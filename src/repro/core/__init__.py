"""EAGr core: aggregates, windows, queries, overlay, execution, adaptivity."""

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.aggregates import (
    NEED_RECOMPUTE,
    AggregateError,
    AggregateFunction,
    Count,
    CountDistinct,
    DistinctSet,
    Max,
    Mean,
    Min,
    Sum,
    TopK,
    UserDefinedAggregate,
    get_aggregate,
)
from repro.core.concurrency import (
    SimulatedExecutor,
    SimulationResult,
    ThreadedEngine,
    collect_tasks,
)
from repro.core.engine import DATAFLOW_MODES, EAGrEngine
from repro.core.execution import Runtime, RuntimeCounters, TraceOp
from repro.core.overlay import Decision, NodeKind, Overlay, OverlayError
from repro.core.partitioned import PartitionedEngine, community_assignment
from repro.core.query import EgoQuery, QueryMode
from repro.core.shards import ShardExecution
from repro.core.windows import TimeWindow, TupleWindow, Window, WindowBuffer

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "NEED_RECOMPUTE",
    "AggregateError",
    "AggregateFunction",
    "Count",
    "CountDistinct",
    "DistinctSet",
    "Max",
    "Mean",
    "Min",
    "Sum",
    "TopK",
    "UserDefinedAggregate",
    "get_aggregate",
    "SimulatedExecutor",
    "SimulationResult",
    "ThreadedEngine",
    "collect_tasks",
    "DATAFLOW_MODES",
    "EAGrEngine",
    "Runtime",
    "RuntimeCounters",
    "TraceOp",
    "Decision",
    "NodeKind",
    "Overlay",
    "OverlayError",
    "PartitionedEngine",
    "community_assignment",
    "EgoQuery",
    "QueryMode",
    "ShardExecution",
    "TimeWindow",
    "TupleWindow",
    "Window",
    "WindowBuffer",
]
