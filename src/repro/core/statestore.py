"""Pluggable value stores for runtime PAO state.

The runtime (:mod:`repro.core.execution`) holds one partial aggregate
object per overlay node.  This module abstracts *where* those PAOs live
behind a small list-like protocol so two backends can coexist:

* :class:`ObjectStore` — a plain Python list of PAOs.  Exact seed
  semantics for arbitrary aggregates (TOP-K counter tables, distinct
  sets, user-defined aggregates) and the only backend available when
  numpy is not importable.
* :class:`ColumnarStore` — dense numpy columns, one per field of the
  aggregate's :class:`~repro.core.aggregates.ColumnSpec` (SUM/COUNT one
  column, MEAN a ``(sum, count)`` pair, MAX/MIN one nan-encoded extremum
  column), indexed by overlay handle — the same dense ids the CSR
  snapshot (:meth:`repro.core.overlay.Overlay.to_csr`) exposes, so the
  batched execution kernels can scatter whole batches with ``np.add.at``
  and reduce pull frontiers with vectorized segment sums.

Backend choice is invisible to callers: both stores answer
``store[handle]`` with exactly the PAO the object backend would hold
(``ColumnarStore.__getitem__`` unpacks columns back into Python scalars),
and ``store[handle] = pao`` / ``store[handle] = None`` round-trip.  The
property tests in ``tests/core/test_statestore.py`` assert read-for-read
equivalence between the backends on integer streams.

Selection is by :func:`make_value_store`: ``"auto"`` picks columnar
exactly when the aggregate declares a column spec and numpy imports,
``"object"`` forces the seed behavior, ``"columnar"`` requests columns
but degrades to the object store when unsupported (missing numpy or an
aggregate without a spec) so deployments stay portable.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.aggregates import AggregateFunction, ColumnSpec

try:  # numpy is optional: the store layer degrades to ObjectStore without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the masked-import test
    _np = None

PAO = Any

#: Valid ``value_store`` modes accepted throughout the stack.
VALUE_STORE_MODES = ("auto", "object", "columnar")


class ValueStoreError(Exception):
    """Raised on invalid value-store configuration."""


class ObjectStore:
    """PAOs as a plain Python list (the seed representation).

    ``data`` exposes the raw list so hot loops can bypass the wrapper's
    ``__getitem__`` indirection entirely — the compiled-plan kernels bind
    ``store.data`` to a local and run at exactly the seed's speed.
    """

    __slots__ = ("data",)

    backend = "object"
    columns: Optional[Tuple] = None

    def __init__(self, num_handles: int = 0) -> None:
        self.data: List[Optional[PAO]] = [None] * num_handles

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, handle: int) -> Optional[PAO]:
        return self.data[handle]

    def __setitem__(self, handle: int, pao: Optional[PAO]) -> None:
        self.data[handle] = pao

    def resize(self, num_handles: int) -> "ObjectStore":
        """Reset to ``num_handles`` empty slots (state is re-derived by the
        runtime's materialization pass, so nothing is preserved)."""
        self.data = [None] * num_handles
        return self


class ColumnarStore:
    """PAOs as dense numpy columns indexed by overlay handle.

    One array per column of the aggregate's spec, identity-filled.  A
    handle whose PAO is logically ``None`` (pull nodes hold no state) is
    tracked in the ``_cleared`` bool mask (1 byte per handle); assigning
    a PAO clears its bit, assigning ``None`` sets it.  The batched
    kernels write straight into ``columns`` — they only ever touch push
    handles, which are always materialized.

    ``data`` returns the store itself: kernels written against
    ``store.data`` fall back to per-element ``__getitem__``/``__setitem__``
    access (used by the interpreted lattice/trace paths), which converts
    between column scalars and Python PAOs at the boundary so arithmetic
    stays IEEE-identical to the object backend.
    """

    __slots__ = ("spec", "columns", "_cleared", "_num_handles", "_unpack", "_pack")

    backend = "columnar"

    def __init__(self, spec: ColumnSpec, num_handles: int = 0) -> None:
        if _np is None:
            raise ValueStoreError("ColumnarStore requires numpy")
        self.spec = spec
        self._unpack = spec.unpack
        self._pack = spec.pack
        self._num_handles = num_handles
        self.columns = tuple(
            _np.full(num_handles, fill, dtype=dtype)
            for dtype, fill in zip(spec.dtypes, spec.fills)
        )
        self._cleared = _np.ones(num_handles, dtype=bool)

    @property
    def data(self) -> "ColumnarStore":
        return self

    def __len__(self) -> int:
        return self._num_handles

    def __getitem__(self, handle: int) -> Optional[PAO]:
        if self._cleared[handle]:
            return None
        columns = self.columns
        if len(columns) == 1:
            return self._unpack((columns[0][handle],))
        return self._unpack(tuple(column[handle] for column in columns))

    def __setitem__(self, handle: int, pao: Optional[PAO]) -> None:
        if pao is None:
            self.clear(handle)
            return
        for column, value in zip(self.columns, self._pack(pao)):
            column[handle] = value
        self._cleared[handle] = False

    def clear(self, handle: int) -> None:
        """Drop ``handle``'s PAO (reads return ``None``); refill identity."""
        for column, fill in zip(self.columns, self.spec.fills):
            column[handle] = fill
        self._cleared[handle] = True

    def resize(self, num_handles: int) -> "ColumnarStore":
        """Remap the columns to ``num_handles`` overlay handles.

        Called from the runtime's materialization pass after overlay
        surgery: the arrays are reallocated only when the handle space
        actually changed size, every slot reverts to the identity fill and
        to the cleared (``None``) state, and the runtime then re-derives
        live PAOs — matching :class:`ObjectStore.resize` exactly.
        """
        if num_handles != self._num_handles:
            self._num_handles = num_handles
            self.columns = tuple(
                _np.full(num_handles, fill, dtype=dtype)
                for dtype, fill in zip(self.spec.dtypes, self.spec.fills)
            )
            self._cleared = _np.ones(num_handles, dtype=bool)
        else:
            for column, fill in zip(self.columns, self.spec.fills):
                column.fill(fill)
            self._cleared.fill(True)
        return self


def resolve_value_store(aggregate: AggregateFunction, mode: str = "auto") -> str:
    """The backend ``mode`` resolves to for ``aggregate`` on this host."""
    if mode not in VALUE_STORE_MODES:
        raise ValueStoreError(
            f"value_store must be one of {VALUE_STORE_MODES}, got {mode!r}"
        )
    if mode == "object":
        return "object"
    spec = getattr(aggregate, "column_spec", None)
    if spec is None or _np is None:
        return "object"
    return "columnar"


def make_value_store(
    aggregate: AggregateFunction, num_handles: int, mode: str = "auto"
):
    """Instantiate the value store ``mode`` resolves to (see module doc)."""
    if resolve_value_store(aggregate, mode) == "columnar":
        return ColumnarStore(aggregate.column_spec, num_handles)
    return ObjectStore(num_handles)
