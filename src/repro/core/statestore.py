"""Pluggable value stores for runtime PAO state.

The runtime (:mod:`repro.core.execution`) holds one partial aggregate
object per overlay node.  This module abstracts *where* those PAOs live
behind a small list-like protocol so two backends can coexist:

* :class:`ObjectStore` — a plain Python list of PAOs.  Exact seed
  semantics for arbitrary aggregates (TOP-K counter tables, distinct
  sets, user-defined aggregates) and the only backend available when
  numpy is not importable.
* :class:`ColumnarStore` — dense numpy columns, one per field of the
  aggregate's :class:`~repro.core.aggregates.ColumnSpec` (SUM/COUNT one
  column, MEAN a ``(sum, count)`` pair, MAX/MIN one nan-encoded extremum
  column), indexed by overlay handle — the same dense ids the CSR
  snapshot (:meth:`repro.core.overlay.Overlay.to_csr`) exposes, so the
  batched execution kernels can scatter whole batches with ``np.add.at``
  and reduce pull frontiers with vectorized segment sums.
* :class:`SharedColumnarStore` — the same columns, but mapped into a
  named ``multiprocessing.shared_memory`` segment so *other processes*
  can attach by name and read (or fill) the identical state zero-copy.
  The serving layer keeps each shard's aggregate state here: the worker
  process creates (or re-attaches) the segment and writes through the
  usual kernels, while the front-end attaches read-only and answers
  reads without a queue round-trip, validated by the store's seqlock
  stamp (:meth:`SharedColumnarStore.read_seq`).  Byte-parity with
  :class:`ColumnarStore` is asserted by the statestore property suite.

Backend choice is invisible to callers: both stores answer
``store[handle]`` with exactly the PAO the object backend would hold
(``ColumnarStore.__getitem__`` unpacks columns back into Python scalars),
and ``store[handle] = pao`` / ``store[handle] = None`` round-trip.  The
property tests in ``tests/core/test_statestore.py`` assert read-for-read
equivalence between the backends on integer streams.

Selection is by :func:`make_value_store`: ``"auto"`` picks columnar
exactly when the aggregate declares a column spec and numpy imports,
``"object"`` forces the seed behavior, ``"columnar"`` requests columns
but degrades to the object store when unsupported (missing numpy or an
aggregate without a spec) so deployments stay portable, and ``"shared"``
requests shared-memory columns with the same degradation rule.
"""

from __future__ import annotations

import os as _os
from typing import Any, List, Optional, Tuple

from repro.core.aggregates import AggregateFunction, ColumnSpec

try:  # numpy is optional: the store layer degrades to ObjectStore without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the masked-import test
    _np = None

PAO = Any

#: Valid ``value_store`` modes accepted throughout the stack.
VALUE_STORE_MODES = ("auto", "object", "columnar", "shared")


# ---------------------------------------------------------------------------
# shared-memory segment helpers
# ---------------------------------------------------------------------------
#
# ``multiprocessing.shared_memory`` registers segments with the resource
# tracker — the crash-safety backstop that unlinks leaked segments when
# the process tree dies.  Spawn workers share their parent's tracker, and
# the tracker's cache is a *set* per resource type, so the registrations
# a create-then-attach sequence produces (on Python < 3.13 attaching also
# registers) deduplicate to one entry.  What does **not** deduplicate is
# unregistration: every ``SharedMemory.unlink()`` sends one UNREGISTER,
# and the second one for the same name crashes the tracker loop with a
# ``KeyError`` and leaves "leaked shared_memory objects" warnings at
# shutdown.  The discipline here is therefore: attaches keep their
# (deduplicated) registration — losing it would disarm the backstop —
# and every segment is unlinked **exactly once**, by name, through
# :func:`unlink_segment`, which no-ops (without touching the tracker) on
# a name that is already gone.  On Python >= 3.13 attaches opt out of
# tracking directly, which additionally protects foreign-tree attachers
# (their own tracker would otherwise unlink the segment on their exit).


def attach_segment(name: str):
    """Attach to an existing named segment (see tracker note above)."""
    from multiprocessing import shared_memory

    try:  # Python >= 3.13: attach without registering at all
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # older: the (deduplicated) registration stays
        return shared_memory.SharedMemory(name=name)


def create_segment(name: Optional[str], size: int):
    """Create a named segment (tracker-registered: crash-safe backstop)."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name, create=True, size=max(size, 8))


def segment_exists(name: str) -> bool:
    """Probe whether a named segment is currently attachable (the shared
    leak-check primitive for benches and the fault harness)."""
    try:
        segment = attach_segment(name)
    except FileNotFoundError:
        return False
    segment.close()
    return True


def unlink_segment(name: str) -> bool:
    """Exactly-once, by-name unlink; ``True`` when the segment existed.

    Serving front-ends call this for crash-safe cleanup: the segment is
    destroyed by *name* regardless of which (possibly dead) process
    created it, and a name that is already gone returns ``False`` without
    sending the tracker a second UNREGISTER (the double-unlink warning
    path this module exists to avoid).
    """
    try:
        segment = attach_segment(name)
    except FileNotFoundError:
        return False
    try:
        segment.unlink()
        if getattr(segment, "_track", True) is False:  # pragma: no cover
            # 3.13+ tracked-out attach: unlink() skipped the UNREGISTER,
            # but the creator's registration must still be retired.
            from multiprocessing import resource_tracker

            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
    except FileNotFoundError:  # pragma: no cover - raced with another unlink
        pass
    finally:
        segment.close()
    return True


class ValueStoreError(Exception):
    """Raised on invalid value-store configuration."""


class ObjectStore:
    """PAOs as a plain Python list (the seed representation).

    ``data`` exposes the raw list so hot loops can bypass the wrapper's
    ``__getitem__`` indirection entirely — the compiled-plan kernels bind
    ``store.data`` to a local and run at exactly the seed's speed.
    """

    __slots__ = ("data",)

    backend = "object"
    columns: Optional[Tuple] = None

    def __init__(self, num_handles: int = 0) -> None:
        self.data: List[Optional[PAO]] = [None] * num_handles

    def __len__(self) -> int:
        return len(self.data)

    def __getitem__(self, handle: int) -> Optional[PAO]:
        return self.data[handle]

    def __setitem__(self, handle: int, pao: Optional[PAO]) -> None:
        self.data[handle] = pao

    def resize(self, num_handles: int) -> "ObjectStore":
        """Reset to ``num_handles`` empty slots (state is re-derived by the
        runtime's materialization pass, so nothing is preserved)."""
        self.data = [None] * num_handles
        return self


class ColumnarStore:
    """PAOs as dense numpy columns indexed by overlay handle.

    One array per column of the aggregate's spec, identity-filled.  A
    handle whose PAO is logically ``None`` (pull nodes hold no state) is
    tracked in the ``_cleared`` bool mask (1 byte per handle); assigning
    a PAO clears its bit, assigning ``None`` sets it.  The batched
    kernels write straight into ``columns`` — they only ever touch push
    handles, which are always materialized.

    ``data`` returns the store itself: kernels written against
    ``store.data`` fall back to per-element ``__getitem__``/``__setitem__``
    access (used by the interpreted lattice/trace paths), which converts
    between column scalars and Python PAOs at the boundary so arithmetic
    stays IEEE-identical to the object backend.
    """

    __slots__ = ("spec", "columns", "_cleared", "_num_handles", "_unpack", "_pack")

    backend = "columnar"

    def __init__(self, spec: ColumnSpec, num_handles: int = 0) -> None:
        if _np is None:
            raise ValueStoreError("ColumnarStore requires numpy")
        self.spec = spec
        self._unpack = spec.unpack
        self._pack = spec.pack
        self._num_handles = num_handles
        self.columns = tuple(
            _np.full(num_handles, fill, dtype=dtype)
            for dtype, fill in zip(spec.dtypes, spec.fills)
        )
        self._cleared = _np.ones(num_handles, dtype=bool)

    @property
    def data(self) -> "ColumnarStore":
        return self

    def __len__(self) -> int:
        return self._num_handles

    def __getitem__(self, handle: int) -> Optional[PAO]:
        if self._cleared[handle]:
            return None
        columns = self.columns
        if len(columns) == 1:
            return self._unpack((columns[0][handle],))
        return self._unpack(tuple(column[handle] for column in columns))

    def __setitem__(self, handle: int, pao: Optional[PAO]) -> None:
        if pao is None:
            self.clear(handle)
            return
        for column, value in zip(self.columns, self._pack(pao)):
            column[handle] = value
        self._cleared[handle] = False

    def clear(self, handle: int) -> None:
        """Drop ``handle``'s PAO (reads return ``None``); refill identity."""
        for column, fill in zip(self.columns, self.spec.fills):
            column[handle] = fill
        self._cleared[handle] = True

    def resize(self, num_handles: int) -> "ColumnarStore":
        """Remap the columns to ``num_handles`` overlay handles.

        Called from the runtime's materialization pass after overlay
        surgery: the arrays are reallocated only when the handle space
        actually changed size, every slot reverts to the identity fill and
        to the cleared (``None``) state, and the runtime then re-derives
        live PAOs — matching :class:`ObjectStore.resize` exactly.
        """
        if num_handles != self._num_handles:
            self._num_handles = num_handles
            self.columns = tuple(
                _np.full(num_handles, fill, dtype=dtype)
                for dtype, fill in zip(self.spec.dtypes, self.spec.fills)
            )
            self._cleared = _np.ones(num_handles, dtype=bool)
        else:
            for column, fill in zip(self.columns, self.spec.fills):
                column.fill(fill)
            self._cleared.fill(True)
        return self


#: Header layout of a :class:`SharedColumnarStore` segment: int64 slots
#: ``[magic, capacity, num_handles, seq, num_columns, reserved x3]``.
_SHM_MAGIC = 0x45414752  # "EAGR"
_SHM_HEADER_SLOTS = 8
_SHM_HEADER_BYTES = _SHM_HEADER_SLOTS * 8
_SHM_ALIGN = 16

_shm_name_counter = [0]


def _auto_shm_name() -> str:
    """A collision-resistant default segment name for this process."""
    _shm_name_counter[0] += 1
    return "eagr{:x}_{:x}_{}".format(
        _os.getpid(), int.from_bytes(_os.urandom(4), "little"), _shm_name_counter[0]
    )


def _shm_layout(spec: ColumnSpec, capacity: int):
    """``(total_bytes, column_offsets, cleared_offset)`` for ``capacity``."""
    offsets = []
    cursor = _SHM_HEADER_BYTES
    for dtype in spec.dtypes:
        itemsize = _np.dtype(dtype).itemsize
        cursor = (cursor + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN
        offsets.append(cursor)
        cursor += capacity * itemsize
    cursor = (cursor + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN
    cleared_offset = cursor
    cursor += capacity  # bool mask, 1 byte per handle
    return cursor, tuple(offsets), cleared_offset


class SharedColumnarStore(ColumnarStore):
    """:class:`ColumnarStore` whose columns live in a named shm segment.

    Same ``ValueStore`` contract and byte-identical read semantics — the
    element accessors, batched scatter kernels and vectorized pull
    segments all operate on the columns exactly as they do for the
    process-private store; only the allocation differs (numpy views over
    a ``multiprocessing.shared_memory`` mapping instead of owned arrays).

    Construction is **create-or-adopt**: with a ``name``, an existing
    segment of compatible layout is re-attached and reset (how a
    restarted shard worker reclaims its predecessor's segment — the
    engine's materialization pass re-derives every value right after),
    otherwise the segment is created.  :meth:`attach` is the passive
    counterpart for readers (the serving front-end): attach by name,
    never reset, never unlink.

    Concurrency contract — one writer, many readers: writers bracket
    multi-column mutations with :meth:`begin_batch` / :meth:`end_batch`,
    which bump the header's seqlock stamp to an odd value for the
    duration; a reader samples :meth:`read_seq` before and after its
    gather and retries on a mismatch or an odd stamp, so it never acts
    on a torn batch.  Lifecycle: :meth:`close` drops this process's
    mapping, :meth:`unlink` destroys the segment (owner's duty; serving
    front-ends also unlink *by name* for crash-safe cleanup when the
    owning worker died — see :func:`unlink_segment`).

    Not picklable by design: state travels between processes through the
    segment itself (or, for durability, through the window buffers a
    :class:`~repro.serve.messages.ShardCheckpoint` carries).
    """

    __slots__ = ("_segment", "_header", "_capacity", "name", "owner")

    backend = "shared"

    def __init__(
        self,
        spec: ColumnSpec,
        num_handles: int = 0,
        name: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if _np is None:
            raise ValueStoreError("SharedColumnarStore requires numpy")
        capacity = max(num_handles, capacity or 0, 1)
        segment = None
        if name is not None:
            try:
                segment = attach_segment(name)
            except FileNotFoundError:
                segment = None
            if segment is not None:  # adopt: validate, then reset below
                header = _np.frombuffer(
                    segment.buf, dtype=_np.int64, count=_SHM_HEADER_SLOTS
                )
                if (
                    int(header[0]) != _SHM_MAGIC
                    or int(header[4]) != spec.num_columns
                    or int(header[1]) < capacity
                ):
                    del header
                    segment.close()
                    unlink_segment(name)
                    segment = None
                else:
                    capacity = int(header[1])
                    del header
        created = segment is None
        if created:
            size, _, _ = _shm_layout(spec, capacity)
            segment = create_segment(name or _auto_shm_name(), size)
        self._init_views(spec, segment, capacity, owner=True)
        header = self._header
        header[0] = _SHM_MAGIC
        header[1] = capacity
        header[2] = num_handles
        header[3] = 0  # seqlock: even = quiescent
        header[4] = spec.num_columns
        self._num_handles = num_handles
        self._reset_fills()

    def _init_views(self, spec: ColumnSpec, segment, capacity: int, owner: bool) -> None:
        """Bind header/column/mask views over ``segment`` (no resets)."""
        self.spec = spec
        self._unpack = spec.unpack
        self._pack = spec.pack
        self._segment = segment
        self.name = segment.name
        self.owner = owner
        self._capacity = capacity
        _total, offsets, cleared_offset = _shm_layout(spec, capacity)
        buf = segment.buf
        self._header = _np.frombuffer(buf, dtype=_np.int64, count=_SHM_HEADER_SLOTS)
        self.columns = tuple(
            _np.frombuffer(buf, dtype=dtype, count=capacity, offset=offset)
            for dtype, offset in zip(spec.dtypes, offsets)
        )
        self._cleared = _np.frombuffer(
            buf, dtype=_np.bool_, count=capacity, offset=cleared_offset
        )

    @classmethod
    def attach(cls, spec: ColumnSpec, name: str) -> "SharedColumnarStore":
        """Attach read-mostly to an existing segment (no reset, no unlink).

        Raises ``FileNotFoundError`` when no segment of that name exists
        and :class:`ValueStoreError` on a layout mismatch.
        """
        if _np is None:
            raise ValueStoreError("SharedColumnarStore requires numpy")
        segment = attach_segment(name)
        header = _np.frombuffer(segment.buf, dtype=_np.int64, count=_SHM_HEADER_SLOTS)
        magic, capacity, num_handles, _seq, ncols = (
            int(header[i]) for i in range(5)
        )
        del header
        if magic != _SHM_MAGIC or ncols != spec.num_columns:
            segment.close()
            raise ValueStoreError(
                f"segment {name!r} does not hold a compatible column layout"
            )
        store = cls.__new__(cls)
        store._init_views(spec, segment, capacity, owner=False)
        store._num_handles = num_handles
        return store

    # -- seqlock (torn-read protection for cross-process readers) ----------

    def read_seq(self) -> int:
        """Current seqlock stamp (odd: a write batch is in flight)."""
        return int(self._header[3])

    def begin_batch(self) -> None:
        """Mark a multi-column mutation in progress (stamp goes odd)."""
        self._header[3] += 1

    def end_batch(self) -> None:
        """Publish the mutation (stamp returns even)."""
        self._header[3] += 1

    # -- lifecycle ----------------------------------------------------------

    def _reset_fills(self) -> None:
        for column, fill in zip(self.columns, self.spec.fills):
            column[: self._capacity] = fill
        self._cleared[: self._capacity] = True

    def resize(self, num_handles: int) -> "SharedColumnarStore":
        """Remap to ``num_handles`` handles (same reset semantics as
        :meth:`ColumnarStore.resize`).

        Growth beyond the segment's capacity reallocates a **fresh
        segment** under a new auto-generated name (the old one is
        unlinked when owned) — attached peers must re-attach.  The
        serving layer sizes segments to the shard overlay at build time
        and never grows them; peer-visible growth only arises in
        single-process use (overlay surgery in tests/tools).
        """
        if num_handles > self._capacity:
            if not self.owner:
                raise ValueStoreError(
                    "cannot grow an attached SharedColumnarStore beyond "
                    f"capacity {self._capacity} (re-attach after the owner "
                    "resizes)"
                )
            spec = self.spec
            self.close()
            unlink_segment(self.name)
            size, _, _ = _shm_layout(spec, num_handles)
            segment = create_segment(_auto_shm_name(), size)
            self._init_views(spec, segment, num_handles, owner=True)
            header = self._header
            header[0] = _SHM_MAGIC
            header[1] = num_handles
            header[4] = spec.num_columns
            header[3] = 0
        self._num_handles = num_handles
        self._header[2] = num_handles
        self._reset_fills()
        return self

    def close(self) -> None:
        """Drop this process's mapping (idempotent; segment survives)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        # Numpy views pin the exported buffer; drop them before closing.
        self._header = None
        self.columns = ()
        self._cleared = None
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a view escaped; freed at exit
            pass

    def unlink(self) -> None:
        """Destroy the segment (idempotent; owner's responsibility)."""
        name = self.name
        self.close()
        unlink_segment(name)

    def __reduce__(self):
        raise TypeError(
            "SharedColumnarStore is not picklable: attach by name instead"
        )


# ---------------------------------------------------------------------------
# columnar write batches
# ---------------------------------------------------------------------------

#: Record layout of a packed write batch: one row per write event.
WRITE_DTYPE = (
    None
    if _np is None
    else _np.dtype([("node", "<i8"), ("value", "<f8"), ("timestamp", "<f8")])
)


#: Exact column types :meth:`WriteFrame.from_items` packs losslessly.
_INT_ONLY = frozenset((int,))
_FLOAT_TYPES = (
    frozenset((float,)) if _np is None else frozenset((float, _np.float64))
)


def _writeframe_from_bytes(data: bytes, ingress: float = None) -> "WriteFrame":
    """Unpickle helper for :meth:`WriteFrame.__reduce__` (module-level so
    queue transports can resolve it by name; ``ingress`` defaults so
    frames pickled before the stamp existed still load)."""
    return WriteFrame(_np.frombuffer(data, dtype=WRITE_DTYPE), ingress=ingress)


class WriteFrame:
    """A write batch packed as a ``(node, value, timestamp)`` record array.

    The binary data plane's unit of ingress: the serving front-end packs
    integer-keyed batches once (:meth:`from_items`), and the same frame
    then rides the shm ring (raw record bytes behind a fixed header), the
    redo log, and the WAL without being re-encoded.  Consumers that stay
    columnar scatter straight from the column views (:attr:`nodes` /
    :attr:`values` / :attr:`timestamps`); everything else falls back to
    the sequence protocol — iterating a frame yields plain
    ``(int, float, float)`` triples, so any code written against write
    lists (object-store runtimes, replicas, oracles) works unchanged.

    Frames are immutable after construction (views over received buffers
    are read-only by design).  Pickling round-trips through the raw
    record bytes (:meth:`__reduce__`), so a frame crossing an
    ``mp.Queue`` or entering the WAL costs one buffer copy, not a
    per-tuple object walk.
    """

    __slots__ = ("records", "ingress")

    dtype = WRITE_DTYPE

    def __init__(self, records, ingress: Optional[float] = None) -> None:
        self.records = records
        #: Front-end ``time.monotonic()`` at ``write_batch`` acceptance
        #: (``None`` on un-stamped frames, e.g. recovery replays) — the
        #: T0 of the end-to-end write→notify latency measurement.  The
        #: stamp rides along the frame everywhere the records do, but is
        #: *not* part of the batch's identity (equality, WAL folding and
        #: byte parity all ignore it).
        self.ingress = ingress

    @classmethod
    def from_items(cls, items) -> Optional["WriteFrame"]:
        """Pack ``items`` (``(node, value, timestamp)`` triples) or return
        ``None`` when the batch is not losslessly packable.

        The gate is strict so the pickle fallback keeps exact semantics:
        nodes must be plain ``int`` (graph keys; bools and numpy ints are
        rejected), values and timestamps must be ``float`` (``np.float64``
        passes; ints and ``np.float32`` do not).  Both the gate and the
        pack run column-wise in C — one transpose, one ``set(map(type,
        column))`` per column, one array assignment per column — because
        a per-item Python loop here would cost as much as the
        ``pickle.dumps`` the frame exists to avoid.
        """
        if _np is None or not items:
            return None
        try:
            if sum(map(len, items)) != 3 * len(items):
                return None  # a non-triple hides somewhere in the batch
            nodes, values, stamps = zip(*items)
        except (TypeError, ValueError):
            return None
        if (
            set(map(type, nodes)) != _INT_ONLY
            or not set(map(type, values)) <= _FLOAT_TYPES
            or not set(map(type, stamps)) <= _FLOAT_TYPES
        ):
            return None
        records = _np.empty(len(nodes), dtype=WRITE_DTYPE)
        records["node"] = nodes
        records["value"] = values
        records["timestamp"] = stamps
        return cls(records)

    @classmethod
    def concat(cls, frames) -> "WriteFrame":
        """One frame holding every row of ``frames`` in order.

        The merged frame keeps the *oldest* ingress stamp of its inputs:
        a coalesced batch is exactly as late as its longest-waiting
        member, so the latency histogram must not be flattered by the
        newest arrival."""
        if len(frames) == 1:
            return frames[0]
        stamps = [f.ingress for f in frames if f.ingress is not None]
        return cls(
            _np.concatenate([frame.records for frame in frames]),
            ingress=min(stamps) if stamps else None,
        )

    # -- column views (the zero-deserialization scatter input) --------------

    @property
    def nodes(self):
        return self.records["node"]

    @property
    def values(self):
        return self.records["value"]

    @property
    def timestamps(self):
        return self.records["timestamp"]

    # -- sequence protocol (universal triple fallback) -----------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.tolist())

    def __getitem__(self, index):
        row = self.records[index]
        return (int(row["node"]), float(row["value"]), float(row["timestamp"]))

    def tolist(self) -> List[Tuple[int, float, float]]:
        """The batch as plain ``(int, float, float)`` triples."""
        return list(
            zip(
                self.records["node"].tolist(),
                self.records["value"].tolist(),
                self.records["timestamp"].tolist(),
            )
        )

    # -- wire form -----------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.records.nbytes

    def tobytes(self) -> bytes:
        return self.records.tobytes()

    def __reduce__(self):
        return (_writeframe_from_bytes, (self.records.tobytes(), self.ingress))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WriteFrame({len(self.records)} rows)"


def resolve_value_store(aggregate: AggregateFunction, mode: str = "auto") -> str:
    """The backend ``mode`` resolves to for ``aggregate`` on this host."""
    if mode not in VALUE_STORE_MODES:
        raise ValueStoreError(
            f"value_store must be one of {VALUE_STORE_MODES}, got {mode!r}"
        )
    if mode == "object":
        return "object"
    spec = getattr(aggregate, "column_spec", None)
    if spec is None or _np is None:
        return "object"
    return "shared" if mode == "shared" else "columnar"


def make_value_store(
    aggregate: AggregateFunction,
    num_handles: int,
    mode: str = "auto",
    shm_name: Optional[str] = None,
):
    """Instantiate the value store ``mode`` resolves to (see module doc).

    ``shm_name`` names (or adopts) the shared segment when ``mode``
    resolves to ``shared``; it is ignored otherwise.
    """
    resolved = resolve_value_store(aggregate, mode)
    if resolved == "shared":
        return SharedColumnarStore(aggregate.column_spec, num_handles, name=shm_name)
    if resolved == "columnar":
        return ColumnarStore(aggregate.column_spec, num_handles)
    return ObjectStore(num_handles)
