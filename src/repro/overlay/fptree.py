"""FP-tree construction and biclique mining (paper Sections 3.2.1–3.2.4).

The VNM family of overlay-construction algorithms finds bicliques in the
bipartite graph ``AG`` by building an FP-tree over a *group* of readers
(transactions) whose items are their input writers, then repeatedly
extracting the root-path with the highest *benefit*

    ``benefit(P) = L(P)·|S(P)| − L(P) − |S(P)| − penalties``

where ``L`` is the path length, ``S`` the support at the path's last node,
and penalties account for negative edges (``VNM_N``) or reused/mined edges
(``VNM_D``).  The benefit is exactly the number of overlay edges saved by
replacing the biclique with one partial-aggregation node.

This module implements one tree supporting all three modes:

* plain insertion (VNM / VNM_A),
* insertion along up to ``k1`` additional quasi-biclique paths with at most
  ``k2`` negative edges each (``VNM_N``, Section 3.2.3) — tree nodes carry a
  second support set ``S'`` of readers that do *not* contain the node's item,
* mined-edge tracking (``VNM_D``, Section 3.2.4) — tree nodes carry a third
  set ``S_mined`` of readers whose edge to the item was already consumed by
  an earlier biclique, which the benefit function charges for.

Mining follows the paper's note that re-mining the same tree finds
progressively lower-benefit bicliques: after each extraction the consumed
readers are removed from the whole tree (duplicate-sensitive modes) or their
edges moved to the mined sets (duplicate-insensitive mode), and mining
continues until no positive-benefit path remains.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

Item = Hashable
Reader = Hashable


class FPNode:
    """One tree node: an item plus the readers supporting it at this path."""

    __slots__ = ("item", "parent", "children", "support", "neg_support", "mined_support")

    def __init__(self, item: Optional[Item], parent: Optional["FPNode"]) -> None:
        self.item = item
        self.parent = parent
        self.children: Dict[Item, FPNode] = {}
        self.support: Set[Reader] = set()
        self.neg_support: Set[Reader] = set()
        self.mined_support: Set[Reader] = set()

    def total_support(self) -> int:
        return len(self.support) + len(self.neg_support) + len(self.mined_support)

    def path_items(self) -> List[Item]:
        """Items from the root (exclusive) down to this node, in order."""
        items: List[Item] = []
        node: Optional[FPNode] = self
        while node is not None and node.item is not None:
            items.append(node.item)
            node = node.parent
        items.reverse()
        return items


@dataclass
class MineCandidate:
    """A candidate biclique located by :meth:`FPTree.mine_best`."""

    node: FPNode
    approx_benefit: float


@dataclass
class Biclique:
    """An extracted biclique, ready to become a partial-aggregation node.

    ``items`` are the path items (the new node's inputs); for each reader,
    ``covered`` lists the items whose direct edges this biclique replaces,
    ``negatives`` the items requiring a negative edge (``VNM_N``), and
    ``reused`` the items that were already covered earlier (``VNM_D``; they
    are inside the new node's aggregate but replaced no edge).
    """

    items: List[Item]
    readers: List[Reader]
    covered: Dict[Reader, List[Item]] = field(default_factory=dict)
    negatives: Dict[Reader, List[Item]] = field(default_factory=dict)
    reused: Dict[Reader, List[Item]] = field(default_factory=dict)
    benefit: int = 0

    @property
    def width(self) -> int:
        return len(self.readers)

    @property
    def length(self) -> int:
        return len(self.items)


class FPTree:
    """An FP-tree over one reader group.

    Parameters
    ----------
    item_rank:
        Total order on items; transactions are inserted with their items
        sorted by ascending rank so shared prefixes align.  Following
        standard FP-tree practice, callers assign low ranks to
        high-frequency items.
    """

    def __init__(self, item_rank: Dict[Item, int]) -> None:
        self._rank = item_rank
        self.root = FPNode(None, None)
        self._registry: Dict[Reader, Set[FPNode]] = collections.defaultdict(set)
        self._num_nodes = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _sorted(self, items: Iterable[Item]) -> List[Item]:
        return sorted(items, key=lambda item: self._rank[item])

    def _register(self, reader: Reader, node: FPNode, kind: str) -> None:
        getattr(node, kind).add(reader)
        self._registry[reader].add(node)

    def _extend_branch(
        self, start: FPNode, reader: Reader, items: Sequence[Item]
    ) -> None:
        node = start
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self._num_nodes += 1
            self._register(reader, child, "support")
            node = child

    def insert(
        self,
        reader: Reader,
        items: Iterable[Item],
        mined_items: Iterable[Item] = (),
    ) -> None:
        """Standard insertion: walk the longest matching prefix, then branch.

        ``mined_items`` (``VNM_D``) is the subset of ``items`` whose edges
        were consumed by an earlier biclique this iteration; the reader is
        registered in ``mined_support`` at those nodes instead.
        """
        mined = set(mined_items)
        ordered = self._sorted(items)
        node = self.root
        position = 0
        while position < len(ordered):
            child = node.children.get(ordered[position])
            if child is None:
                break
            kind = "mined_support" if ordered[position] in mined else "support"
            self._register(reader, child, kind)
            node = child
            position += 1
        # Remaining items start a fresh branch.
        remaining = ordered[position:]
        for item in remaining:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                self._num_nodes += 1
            kind = "mined_support" if item in mined else "support"
            self._register(reader, child, kind)
            node = child

    def insert_with_negatives(
        self,
        reader: Reader,
        items: Iterable[Item],
        k1: int = 2,
        k2: int = 5,
        min_gain: int = 2,
    ) -> None:
        """``VNM_N`` insertion: the standard path plus up to ``k1 − 1``
        quasi-biclique paths using at most ``k2`` negative edges each.

        A candidate path's *gain* is ``|P ∩ items| − |P \\ items|`` — edges it
        could save minus negative edges it would introduce.  Exploration is
        breadth-first and abandons a subtree once it exceeds ``k2`` negatives
        (the paper's efficiency cutoff).
        """
        item_set = set(items)
        # Collect candidates before the standard insert so the reader's own
        # fresh branch does not pollute the search.
        candidates: List[Tuple[int, int, FPNode]] = []
        queue: collections.deque = collections.deque(
            (child, 0, 0) for child in self.root.children.values()
        )
        while queue:
            node, gain, negatives = queue.popleft()
            if node.item in item_set:
                gain += 1
            else:
                negatives += 1
                gain -= 1
            if negatives > k2:
                continue
            if negatives >= 1 and gain >= min_gain and node.total_support() >= 1:
                candidates.append((gain, negatives, node))
            for child in node.children.values():
                queue.append((child, gain, negatives))

        self.insert(reader, items)

        candidates.sort(key=lambda entry: (-entry[0], entry[1]))
        for gain, _, node in candidates[: max(0, k1 - 1)]:
            path_nodes: List[FPNode] = []
            cursor: Optional[FPNode] = node
            while cursor is not None and cursor.item is not None:
                path_nodes.append(cursor)
                cursor = cursor.parent
            path_nodes.reverse()
            for path_node in path_nodes:
                if path_node.item in item_set:
                    self._register(reader, path_node, "support")
                else:
                    self._register(reader, path_node, "neg_support")
            path_items = {n.item for n in path_nodes}
            remaining = [item for item in self._sorted(item_set) if item not in path_items]
            self._extend_branch(node, reader, remaining)

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------

    def mine_best(self, skip: Optional[Set[int]] = None) -> Optional[MineCandidate]:
        """Locate the root-path with the best benefit.

        The paper scores a path as ``L·|S| − L − |S| − Σ_P |S'(x)|`` —
        charging *every* negative/mined registration on the path, including
        readers that do not survive to the path's end.  On small reader
        groups that approximation drowns long clean paths in unrelated
        penalties, so we compute the exact quantity extraction will use:
        per surviving reader, ``saving(r) = pos(r) − 1 − neg(r)`` (readers
        with non-positive saving are left out), and the path's benefit is
        ``Σ_r max(saving, 0) − L``.  A reader present at a node is present
        at every ancestor, so ``pos(r) = L − neg(r) − mined(r)`` with the
        per-reader counters maintained incrementally along the DFS.
        """
        best: Optional[MineCandidate] = None
        neg_count: Dict[Reader, int] = {}
        mined_count: Dict[Reader, int] = {}
        # Iterative DFS with explicit enter/leave records so the per-reader
        # path counters can be unwound on backtrack.
        stack: List[Tuple[str, FPNode, int]] = [
            ("enter", child, 1) for child in self.root.children.values()
        ]
        while stack:
            action, node, depth = stack.pop()
            if action == "leave":
                for reader in node.neg_support:
                    neg_count[reader] -= 1
                for reader in node.mined_support:
                    mined_count[reader] -= 1
                continue
            for reader in node.neg_support:
                neg_count[reader] = neg_count.get(reader, 0) + 1
            for reader in node.mined_support:
                mined_count[reader] = mined_count.get(reader, 0) + 1
            benefit = -depth
            for reader in node.support:
                saving = (
                    depth
                    - neg_count.get(reader, 0)
                    - mined_count.get(reader, 0)
                    - 1
                    - neg_count.get(reader, 0)
                )
                if saving > 0:
                    benefit += saving
            for reader in node.neg_support | node.mined_support:
                negs = neg_count.get(reader, 0)
                saving = depth - negs - mined_count.get(reader, 0) - 1 - negs
                if saving > 0:
                    benefit += saving
            if (
                benefit >= 1
                and (skip is None or id(node) not in skip)
                and (best is None or benefit > best.approx_benefit)
            ):
                best = MineCandidate(node=node, approx_benefit=benefit)
            stack.append(("leave", node, depth))
            for child in node.children.values():
                stack.append(("enter", child, depth + 1))
        return best

    def extract(
        self,
        candidate: MineCandidate,
        duplicate_insensitive: bool = False,
        min_benefit: int = 1,
    ) -> Optional[Biclique]:
        """Materialize ``candidate`` with exact per-reader accounting.

        Readers whose individual saving is non-positive are left out.  If the
        resulting exact benefit falls below ``min_benefit`` the extraction is
        abandoned and ``None`` is returned (the caller should skip the node).
        On success the tree is updated: consumed readers are removed entirely
        (duplicate-sensitive) or their path edges moved to the mined sets
        (duplicate-insensitive).
        """
        node = candidate.node
        path_nodes: List[FPNode] = []
        cursor: Optional[FPNode] = node
        while cursor is not None and cursor.item is not None:
            path_nodes.append(cursor)
            cursor = cursor.parent
        path_nodes.reverse()
        items = [n.item for n in path_nodes]

        at_end = node.support | node.neg_support | node.mined_support
        kept: List[Reader] = []
        covered: Dict[Reader, List[Item]] = {}
        negatives: Dict[Reader, List[Item]] = {}
        reused: Dict[Reader, List[Item]] = {}
        total_saving = 0
        for reader in sorted(at_end, key=lambda r: (type(r).__name__, repr(r))):
            pos: List[Item] = []
            neg: List[Item] = []
            old: List[Item] = []
            for path_node in path_nodes:
                if reader in path_node.support:
                    pos.append(path_node.item)
                elif reader in path_node.neg_support:
                    neg.append(path_node.item)
                elif reader in path_node.mined_support:
                    old.append(path_node.item)
            saving = len(pos) - 1 - len(neg)
            if saving <= 0:
                continue
            kept.append(reader)
            covered[reader] = pos
            negatives[reader] = neg
            reused[reader] = old
            total_saving += saving

        benefit = total_saving - len(items)
        if benefit < min_benefit or not kept:
            return None

        if duplicate_insensitive:
            for reader in kept:
                for path_node in path_nodes:
                    if reader in path_node.support:
                        path_node.support.discard(reader)
                        path_node.mined_support.add(reader)
        else:
            for reader in kept:
                self.remove_reader(reader)

        return Biclique(
            items=items,
            readers=kept,
            covered=covered,
            negatives=negatives,
            reused=reused,
            benefit=benefit,
        )

    def remove_reader(self, reader: Reader) -> None:
        """Erase every registration of ``reader`` from the tree."""
        for node in self._registry.pop(reader, ()):
            node.support.discard(reader)
            node.neg_support.discard(reader)
            node.mined_support.discard(reader)

    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FPTree(nodes={self._num_nodes}, readers={len(self._registry)})"


def mine_all(
    tree: FPTree,
    duplicate_insensitive: bool = False,
    min_benefit: int = 1,
) -> Iterable[Biclique]:
    """Repeatedly extract the best biclique until none remains profitable."""
    skip: Set[int] = set()
    while True:
        candidate = tree.mine_best(skip)
        if candidate is None:
            return
        biclique = tree.extract(
            candidate,
            duplicate_insensitive=duplicate_insensitive,
            min_benefit=min_benefit,
        )
        if biclique is None:
            skip.add(id(candidate.node))
            continue
        yield biclique
