"""IOB: Incremental Overlay Building (paper Section 3.2.5).

IOB builds the overlay one reader at a time.  For the next reader ``r`` it
solves a minimum exact set cover: find the fewest existing overlay nodes
whose (pairwise-disjoint) writer-coverage sets exactly tile ``N(r)``, using
the standard greedy heuristic — repeatedly take the node with maximum
overlap with the uncovered remainder.  When the best node ``v`` covers a
*superset* (``B ⊄ A``), the overlay is restructured exactly as the paper
describes: a new node ``v'`` takes over the inputs of ``v`` lying inside the
overlap, ``v'`` becomes an input of ``v`` (so ``I(v)`` is preserved for
``v``'s other consumers), and ``v'`` serves the new reader.  This rerouting
is what makes IOB overlays compact but *deep* (Figure 11(a)).

Two indexes make the greedy step a single scan of the input list:

* the **reverse index** maps a writer to every overlay node whose coverage
  contains it (the paper's example: ``a_w``'s entry contains ``v2`` even
  though the edge is indirect),
* the **forward index** is the overlay's input adjacency itself.

:class:`IOBState` packages the overlay with both indexes and the cover /
split / prune operations; it is reused by incremental maintenance
(:mod:`repro.overlay.dynamic`, Section 3.3) on overlays built by *any*
algorithm.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.overlay import NodeKind, Overlay
from repro.graph.bipartite import BipartiteGraph
from repro.overlay.shingles import shingle_order
from repro.overlay.vnm import ConstructionResult, IterationStats, VNMConfig

NodeId = Hashable


class IOBState:
    """An overlay plus the coverage / reverse indexes IOB needs.

    ``coverage[h]`` is the frozen set of *writer handles* aggregated by
    overlay node ``h`` (``I(ovl)`` in the paper); ``reverse[w]`` is the set
    of reusable nodes (writers and pure partials — never readers) whose
    coverage contains writer ``w``.
    """

    def __init__(self, overlay: Overlay) -> None:
        self.overlay = overlay
        self.coverage: Dict[int, FrozenSet[int]] = {}
        self.reverse: Dict[int, Set[int]] = {}
        self.dead: Set[int] = set()
        #: Handles whose subtree is a clean exact-cover tree (single positive
        #: path per writer).  Only pure nodes are reusable / splittable.
        self.pure: Set[int] = set()
        self._index_existing()

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------

    def _index_existing(self) -> None:
        """Compute coverage bottom-up for a pre-existing overlay.

        Nodes whose net coverage is not a pure set (multiplicities other
        than one, e.g. under negative edges or duplicate paths) are marked
        *impure* and never reused as cover pieces — reusing them could break
        the exact-cover invariant.
        """
        overlay = self.overlay
        signed: Dict[int, Dict[int, int]] = {}
        for handle in overlay.topological_order():
            kind = overlay.kinds[handle]
            if kind is NodeKind.WRITER:
                signed[handle] = {handle: 1}
                self.coverage[handle] = frozenset((handle,))
                self.reverse.setdefault(handle, set()).add(handle)
                self.pure.add(handle)
                continue
            merged: Dict[int, int] = {}
            clean = True
            size_sum = 0
            for src, sign in overlay.inputs[handle].items():
                if sign < 0 or src not in self.pure:
                    clean = False
                size_sum += len(signed[src])
                for writer, mult in signed[src].items():
                    total = merged.get(writer, 0) + sign * mult
                    if total:
                        merged[writer] = total
                    else:
                        merged.pop(writer, None)
            signed[handle] = merged
            if kind in (NodeKind.PARTIAL, NodeKind.READER):
                # Pure: all inputs pure, positive, and pairwise disjoint —
                # i.e. the node is a clean exact-cover aggregate.  Readers
                # participate too: their input sets are the prime sharing
                # targets (paper Figure 4 splits aggregators out of e_r's
                # inputs), though a reader itself never feeds anything —
                # reuse always goes through a split-out partial node.
                pure = clean and len(merged) == size_sum
                cover = frozenset(merged)
                self.coverage[handle] = cover
                if pure:
                    self.pure.add(handle)
                    for writer in cover:
                        self.reverse.setdefault(writer, set()).add(handle)

    # ------------------------------------------------------------------
    # node/edge helpers
    # ------------------------------------------------------------------

    def ensure_writer(self, node: NodeId) -> int:
        """Fetch-or-create the writer handle for ``node``, kept indexed."""
        handle = self.overlay.writer_of.get(node)
        if handle is not None:
            return handle
        handle = self.overlay.add_writer(node)
        self.coverage[handle] = frozenset((handle,))
        self.reverse.setdefault(handle, set()).add(handle)
        self.pure.add(handle)
        return handle

    def _register_partial(self, handle: int, cover: FrozenSet[int]) -> None:
        self.coverage[handle] = cover
        self.pure.add(handle)
        for writer in cover:
            self.reverse.setdefault(writer, set()).add(handle)

    def _unregister(self, handle: int) -> None:
        cover = self.coverage.pop(handle, frozenset())
        self.pure.discard(handle)
        for writer in cover:
            bucket = self.reverse.get(writer)
            if bucket is not None:
                bucket.discard(handle)

    # ------------------------------------------------------------------
    # greedy exact set cover (the heart of IOB)
    # ------------------------------------------------------------------

    def _best_candidate(
        self, needed: Set[int], banned: Set[int]
    ) -> Tuple[Optional[int], int]:
        """Overlay node with maximum ``|I(v) ∩ needed|`` via the reverse index."""
        counts: Dict[int, int] = {}
        for writer in needed:
            for node in self.reverse.get(writer, ()):
                if node not in banned:
                    counts[node] = counts.get(node, 0) + 1
        best = None
        best_key: Tuple[int, int, int] = (0, 0, 0)
        for node, count in counts.items():
            if count < 2:
                continue
            # Prefer bigger overlap, then tighter fit, then older nodes.
            key = (count, -len(self.coverage[node]), -node)
            if key > best_key:
                best, best_key = node, key
        return best, best_key[0]

    def cover(
        self,
        targets: Iterable[int],
        forbid: Optional[Set[int]] = None,
        strict_subsets: bool = False,
        allow_split: bool = True,
    ) -> List[int]:
        """Greedy exact cover of ``targets`` (writer handles).

        Returns node handles with pairwise-disjoint coverages whose union is
        exactly ``targets``; may create new partial nodes by splitting.  With
        ``strict_subsets`` only candidates whose coverage is a proper subset
        of ``targets`` are considered (used when re-covering an existing
        node, where equal-coverage candidates risk cycles).
        """
        needed = set(targets)
        banned: Set[int] = set(forbid or ())
        if strict_subsets:
            full = frozenset(targets)
            banned |= {
                node
                for writer in needed
                for node in self.reverse.get(writer, ())
                if self.coverage[node] >= full
            }
        pieces: List[int] = []
        while needed:
            best, _ = self._best_candidate(needed, banned)
            if best is None:
                pieces.extend(sorted(needed))  # remaining singleton writers
                break
            cover = self.coverage[best]
            is_reader = self.overlay.kinds[best] is NodeKind.READER
            if cover <= needed and not is_reader:
                pieces.append(best)
                needed -= cover
                continue
            if not allow_split:
                banned.add(best)
                continue
            # Readers never feed other nodes: their overlap is extracted by
            # splitting a fresh aggregator out of their inputs (Figure 4).
            piece = self._split(best, needed)
            if piece is None:
                banned.add(best)
                continue
            pieces.append(piece)
            needed -= self.coverage[piece]
        return pieces

    def _split(self, node: int, needed: Set[int]) -> Optional[int]:
        """Reroute part of ``node``'s inputs into a new node (paper's ``v'``).

        The inputs of ``node`` whose coverage lies inside ``I(node) ∩ needed``
        are moved to a fresh partial node ``v'``, and ``v'`` becomes an input
        of ``node`` — preserving ``I(node)`` for its existing consumers while
        exposing the overlap as a reusable aggregate.  Returns ``None`` when
        no input lies cleanly inside the overlap (the caller then bans the
        node and tries the next candidate).
        """
        overlay = self.overlay
        if node not in self.pure:
            return None
        target = self.coverage[node] & needed
        movable: List[int] = []
        for src in overlay.inputs[node]:
            if src in self.pure and self.coverage[src] <= target:
                movable.append(src)
        if not movable:
            return None
        if len(movable) == 1:
            return movable[0]  # already a node computing a usable piece
        fresh = overlay.add_partial()
        for src in movable:
            overlay.remove_edge(src, node)
            overlay.add_edge(src, fresh, 1)
        overlay.add_edge(fresh, node, 1)
        cover = frozenset().union(*(self.coverage[src] for src in movable))
        self._register_partial(fresh, cover)
        return fresh

    # ------------------------------------------------------------------
    # reader management
    # ------------------------------------------------------------------

    def add_reader(self, reader: NodeId, writers: Sequence[NodeId]) -> int:
        """Add reader ``reader`` aggregating ``writers`` via greedy cover."""
        handles = {self.ensure_writer(w) for w in writers}
        r = self.overlay.add_reader(reader)
        for piece in self.cover(handles):
            self.overlay.add_edge(piece, r, 1)
        self._register_partial(r, frozenset(handles))  # readers index like partials
        return r

    def reset_reader_cover(self, reader_handle: int, writer_handles: Iterable[int]) -> None:
        """Refresh a reader's indexed coverage after incremental maintenance."""
        self._unregister(reader_handle)
        self._register_partial(reader_handle, frozenset(writer_handles))

    def remove_reader_inputs(self, reader_handle: int) -> None:
        """Detach a reader from all its inputs, pruning orphaned partials."""
        overlay = self.overlay
        self._unregister(reader_handle)
        sources = list(overlay.inputs[reader_handle])
        for src in sources:
            overlay.remove_edge(src, reader_handle)
        self.prune_orphans(sources)

    def prune_orphans(self, candidates: Iterable[int]) -> int:
        """Remove partial nodes left with no consumers, cascading upstream.

        Handles are tombstoned (the overlay keeps dense indices); dead nodes
        have no edges and are excluded from the indexes, so they are inert.
        Returns the number of nodes pruned.
        """
        overlay = self.overlay
        stack = [
            h
            for h in candidates
            if overlay.kinds[h] is NodeKind.PARTIAL and not overlay.outputs[h]
        ]
        pruned = 0
        while stack:
            handle = stack.pop()
            if handle in self.dead or overlay.outputs[handle]:
                continue
            sources = list(overlay.inputs[handle])
            for src in sources:
                overlay.remove_edge(src, handle)
            self._unregister(handle)
            self.dead.add(handle)
            pruned += 1
            for src in sources:
                if overlay.kinds[src] is NodeKind.PARTIAL and not overlay.outputs[src]:
                    stack.append(src)
        return pruned

    # ------------------------------------------------------------------
    # improvement iterations (paper: "revisit the decisions ... and do
    # local restructuring of the overlay if better decisions are found")
    # ------------------------------------------------------------------

    def improve_partials(self) -> int:
        """One improvement sweep over all partial nodes; returns #rewired.

        Splitting is disabled here so the edge delta is exactly
        ``len(pieces) − fan_in``: a rewiring is applied only when it strictly
        shrinks the overlay (splits could hide +2 edges per new node behind
        a smaller-looking piece count).
        """
        overlay = self.overlay
        rewired = 0
        for handle in list(overlay.partial_handles()):
            if handle in self.dead or not overlay.outputs[handle]:
                continue
            current_inputs = list(overlay.inputs[handle])
            target = self.coverage[handle]
            pieces = self.cover(
                set(target), forbid={handle}, strict_subsets=True, allow_split=False
            )
            if len(pieces) >= len(current_inputs):
                continue
            if set(pieces) == set(current_inputs):
                continue
            for src in current_inputs:
                overlay.remove_edge(src, handle)
            for piece in pieces:
                if not overlay.has_edge(piece, handle):
                    overlay.add_edge(piece, handle, 1)
            self.prune_orphans(current_inputs)
            rewired += 1
        return rewired


def build_iob(
    ag: BipartiteGraph,
    iterations: int = 3,
    num_shingles: int = 2,
    seed: int = 2014,
) -> ConstructionResult:
    """Construct an overlay with IOB (Section 3.2.5).

    The first iteration inserts readers in shingle order (similar readers
    adjacent, maximizing immediate reuse); subsequent iterations re-cover
    each partial aggregator and keep improvements.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    overlay = Overlay()
    state = IOBState(overlay)
    stats: List[IterationStats] = []

    started = time.perf_counter()
    order = shingle_order(
        dict(ag.reader_inputs), num_hashes=num_shingles, seed=seed
    )
    for writer in sorted(ag.writers, key=lambda n: (type(n).__name__, repr(n))):
        state.ensure_writer(writer)
    for reader in order:
        state.add_reader(reader, ag.reader_inputs[reader])
    stats.append(
        IterationStats(
            iteration=1,
            chunk_size=0,
            bicliques=overlay.num_partials,
            edges_saved=max(0, ag.num_edges - overlay.num_edges),
            negative_edges_added=0,
            sharing_index=overlay.sharing_index(ag),
            elapsed_seconds=time.perf_counter() - started,
            memory_estimate=overlay.memory_estimate() + 64 * len(state.coverage),
        )
    )

    for iteration in range(2, iterations + 1):
        started = time.perf_counter()
        rewired = state.improve_partials()
        stats.append(
            IterationStats(
                iteration=iteration,
                chunk_size=0,
                bicliques=rewired,
                edges_saved=max(0, ag.num_edges - overlay.num_edges),
                negative_edges_added=0,
                sharing_index=overlay.sharing_index(ag),
                elapsed_seconds=time.perf_counter() - started,
                memory_estimate=overlay.memory_estimate() + 64 * len(state.coverage),
            )
        )
        if rewired == 0:
            break

    config = VNMConfig(variant="vnm", iterations=iterations)  # placeholder config
    result = ConstructionResult(overlay=overlay, stats=stats, config=config)
    result.iob_state = state  # type: ignore[attr-defined]
    return result
