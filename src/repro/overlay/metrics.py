"""Overlay quality metrics (paper Sections 3.1 and 5.2).

The primary construction metric is the *sharing index* ``1 − |E''|/|E'|``
(already available as :meth:`Overlay.sharing_index`); this module adds the
derived quantities the evaluation reports: compression ratio (the
graph-compression literature's metric, ``CR = 1/(1−SI)``), the overlay-depth
distribution of Figure 11(a), and a one-stop :class:`OverlaySummary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.overlay import Overlay
from repro.graph.bipartite import BipartiteGraph


@dataclass(frozen=True)
class OverlaySummary:
    """Everything Figures 8–11 report about one overlay."""

    num_writers: int
    num_readers: int
    num_partials: int
    num_edges: int
    num_negative_edges: int
    ag_edges: int
    sharing_index: float
    compression_ratio: float
    average_depth: float
    max_depth: int
    memory_estimate: int


def compression_ratio(sharing_index: float) -> float:
    """``CR = 1 / (1 − SI)`` (Section 3.1)."""
    if sharing_index >= 1.0:
        raise ValueError("sharing index must be < 1")
    return 1.0 / (1.0 - sharing_index)


def depth_distribution(overlay: Overlay) -> Dict[int, int]:
    """Histogram: overlay depth → number of readers at that depth.

    A reader's depth is the length of the longest path from one of its input
    writers (Section 5.2); the identity overlay has every reader at depth 1.
    """
    histogram: Dict[int, int] = {}
    for depth in overlay.reader_depths().values():
        histogram[depth] = histogram.get(depth, 0) + 1
    return histogram


def depth_cdf(overlay: Overlay) -> List[Tuple[int, float]]:
    """Cumulative fraction of readers at each depth (Figure 11(a) series)."""
    histogram = depth_distribution(overlay)
    total = sum(histogram.values())
    if total == 0:
        return []
    cdf: List[Tuple[int, float]] = []
    running = 0
    for depth in sorted(histogram):
        running += histogram[depth]
        cdf.append((depth, running / total))
    return cdf


def average_depth(overlay: Overlay) -> float:
    """Mean reader depth (paper reports 4.66 for IOB vs 3.44 for VNM_A)."""
    depths = overlay.reader_depths()
    if not depths:
        return 0.0
    return sum(depths.values()) / len(depths)


def summarize(overlay: Overlay, ag: BipartiteGraph) -> OverlaySummary:
    """Compute the full metric set for an overlay built over ``ag``."""
    sharing = overlay.sharing_index(ag)
    depths = overlay.reader_depths()
    return OverlaySummary(
        num_writers=len(overlay.writer_of),
        num_readers=len(overlay.reader_of),
        num_partials=overlay.num_partials,
        num_edges=overlay.num_edges,
        num_negative_edges=overlay.num_negative_edges,
        ag_edges=ag.num_edges,
        sharing_index=sharing,
        compression_ratio=compression_ratio(min(sharing, 0.999999)),
        average_depth=(sum(depths.values()) / len(depths)) if depths else 0.0,
        max_depth=max(depths.values()) if depths else 0,
        memory_estimate=overlay.memory_estimate(),
    )
