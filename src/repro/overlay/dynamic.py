"""Incremental overlay maintenance under data-graph changes (Section 3.3).

The paper's design splits responsibilities: the overlay is rebuilt rarely
and expensively, but individual structure-stream events (edge/node
additions and deletions) are absorbed *incrementally* with local overlay
surgery, falling back to IOB-style re-covering of a reader when the change
is too large for a local fix.  Concretely:

* **Edge addition** — for each reader whose input list gained writers
  ``Δ(I(r))``: if ``|Δ|`` exceeds a threshold, cover ``Δ`` with the IOB
  greedy machinery (reusing an existing partial aggregate when one matches)
  and connect the pieces to ``r``; otherwise add direct writer→reader edges.
  A per-reader count of accumulated direct edges triggers a full re-cover of
  that reader when it crosses a second threshold.
* **Edge deletion** — for each reader that lost writers: direct edges are
  simply removed; inputs through partial aggregates are handled by detaching
  the reader from the affected aggregate and re-covering the remainder of
  that aggregate's contribution.  If too many aggregates are affected
  (paper's cutoff: > 5), the reader is rebuilt outright.
* **Node addition/deletion** — composed from the above plus writer/reader
  bookkeeping.

The maintainer keeps a mirror of every reader's current input set (the
live ``AG``), so it also serves as the oracle tests compare against.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set

from repro.core.overlay import NodeKind, Overlay
from repro.graph.bipartite import BipartiteGraph
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.neighborhoods import Neighborhood
from repro.graph.streams import StructureEvent, StructureOp
from repro.overlay.iob import IOBState

NodeId = Hashable


class OverlayMaintainer:
    """Keeps an overlay consistent with a changing data graph.

    Parameters
    ----------
    graph:
        The data graph; must already reflect the events passed to
        :meth:`apply` (subscribe the maintainer *after* the graph mutates,
        or use :meth:`attach` which wires this up).
    neighborhood / predicate:
        The query parameters defining reader input lists.
    overlay:
        The overlay to maintain (from any construction algorithm).
    delta_threshold:
        ``|Δ(I(r))|`` above which additions are covered with a partial
        aggregate instead of direct edges.
    direct_edge_threshold:
        Accumulated direct edges per reader that trigger a full re-cover.
    affected_threshold:
        Number of affected partial aggregates above which a deletion
        rebuilds the reader outright (paper uses 5).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        neighborhood: Neighborhood,
        overlay: Overlay,
        predicate=None,
        delta_threshold: int = 3,
        direct_edge_threshold: int = 5,
        affected_threshold: int = 5,
    ) -> None:
        self.graph = graph
        self.neighborhood = neighborhood
        self.predicate = predicate
        self.state = IOBState(overlay)
        self.delta_threshold = delta_threshold
        self.direct_edge_threshold = direct_edge_threshold
        self.affected_threshold = affected_threshold
        self._direct_counts: Dict[NodeId, int] = {}
        # Live AG mirror: reader -> current input writer set, plus inverse.
        self.current_inputs: Dict[NodeId, Set[NodeId]] = {}
        self._feeds: Dict[NodeId, Set[NodeId]] = {}
        self._bootstrap_mirror()
        #: Incremented on every overlay mutation; engines watch this to know
        #: when to refresh their runtime state.
        self.version = 0

    @property
    def overlay(self) -> Overlay:
        """The maintained overlay (shared with the engine's runtime)."""
        return self.state.overlay

    def consume_plan_dirty(self) -> Set[int]:
        """Handles touched by overlay surgery since the last call.

        Engines feed this to :meth:`repro.core.execution.Runtime.rebuild`
        so that absorbing a structure event invalidates only the compiled
        propagation plans whose traversal crosses the surgery site,
        instead of dropping the whole plan cache.
        """
        return self.overlay.pop_dirty()

    # ------------------------------------------------------------------

    def _bootstrap_mirror(self) -> None:
        for reader in list(self.overlay.reader_of):
            members = self._query_inputs(reader)
            self.current_inputs[reader] = members
            for writer in members:
                self._feeds.setdefault(writer, set()).add(reader)

    def _query_inputs(self, node: NodeId) -> Set[NodeId]:
        if node not in self.graph:
            return set()
        if self.predicate is not None and not self.predicate(node):
            return set()
        return self.neighborhood(self.graph, node)

    def attach(self) -> "OverlayMaintainer":
        """Subscribe to the graph's structure stream (events arrive after
        the graph has already mutated, which is what :meth:`apply` expects)."""
        self.graph.subscribe(self.apply)
        return self

    # ------------------------------------------------------------------
    # event entry point
    # ------------------------------------------------------------------

    def apply(self, event: StructureEvent) -> None:
        """Absorb one structure-stream event into the overlay."""
        if event.op is StructureOp.ADD_EDGE:
            self._refresh_affected({event.u, event.v})
        elif event.op is StructureOp.REMOVE_EDGE:
            self._refresh_affected({event.u, event.v})
        elif event.op is StructureOp.ADD_NODE:
            self._refresh_affected({event.u})
        elif event.op is StructureOp.REMOVE_NODE:
            self._remove_node(event.u)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown structure op {event.op}")
        self.version += 1

    # ------------------------------------------------------------------
    # diff-based refresh
    # ------------------------------------------------------------------

    def _affected_readers(self, endpoints: Set[NodeId]) -> Set[NodeId]:
        affected: Set[NodeId] = set()
        for node in endpoints:
            if node in self.graph:
                affected.add(node)
                affected |= self.neighborhood.affected_readers(self.graph, node)
        # Readers that previously depended on the endpoints must also be
        # re-checked (reverse reachability may have shrunk).
        for node in endpoints:
            affected |= self._feeds.get(node, set())
        return affected

    def _refresh_affected(self, endpoints: Set[NodeId]) -> None:
        for reader in sorted(
            self._affected_readers(endpoints), key=lambda n: (type(n).__name__, repr(n))
        ):
            self._refresh_reader(reader)

    def _refresh_reader(self, reader: NodeId) -> None:
        new_inputs = self._query_inputs(reader)
        old_inputs = self.current_inputs.get(reader, set())
        if new_inputs == old_inputs:
            return
        added = new_inputs - old_inputs
        removed = old_inputs - new_inputs
        if not old_inputs and new_inputs:
            self._add_reader(reader, new_inputs)
        elif old_inputs and not new_inputs:
            self._drop_reader(reader)
        else:
            if removed:
                self._process_removals(reader, removed)
            if added:
                self._process_additions(reader, added)
            handle = self.overlay.reader_of.get(reader)
            if handle is not None:
                self.state.reset_reader_cover(
                    handle,
                    (
                        self.overlay.writer_of[w]
                        for w in new_inputs
                        if w in self.overlay.writer_of
                    ),
                )
        # Update mirrors.
        for writer in removed:
            bucket = self._feeds.get(writer)
            if bucket is not None:
                bucket.discard(reader)
                if not bucket:
                    del self._feeds[writer]
        for writer in added:
            self._feeds.setdefault(writer, set()).add(reader)
        if new_inputs:
            self.current_inputs[reader] = new_inputs
        else:
            self.current_inputs.pop(reader, None)

    # ------------------------------------------------------------------
    # reader-level operations
    # ------------------------------------------------------------------

    def _add_reader(self, reader: NodeId, inputs: Set[NodeId]) -> None:
        self.state.add_reader(reader, sorted(inputs, key=repr))
        self._direct_counts[reader] = 0

    def _drop_reader(self, reader: NodeId) -> None:
        handle = self.overlay.reader_of.pop(reader, None)
        if handle is None:
            return
        self.overlay.mark_dirty(handle)  # the pop bypasses edge bookkeeping
        self.state.remove_reader_inputs(handle)
        self._direct_counts.pop(reader, None)

    def _rebuild_reader(self, reader: NodeId, inputs: Set[NodeId]) -> None:
        handle = self.overlay.reader_of.get(reader)
        if handle is not None:
            self.state.remove_reader_inputs(handle)
            writer_handles = {self.state.ensure_writer(w) for w in inputs}
            for piece in self.state.cover(writer_handles):
                self.overlay.add_edge(piece, handle, 1)
            self.state.reset_reader_cover(handle, writer_handles)
        else:
            self.state.add_reader(reader, sorted(inputs, key=repr))
        self._direct_counts[reader] = 0

    def _process_additions(self, reader: NodeId, added: Set[NodeId]) -> None:
        handle = self.overlay.reader_of.get(reader)
        if handle is None:
            self._add_reader(reader, self._query_inputs(reader))
            return
        added_handles = {self.state.ensure_writer(w) for w in added}
        if len(added) > self.delta_threshold:
            # Large delta: aggregate it behind (possibly reused) partials.
            for piece in self.state.cover(added_handles):
                if not self.overlay.has_edge(piece, handle):
                    self.overlay.add_edge(piece, handle, 1)
        else:
            for writer_handle in sorted(added_handles):
                if not self.overlay.has_edge(writer_handle, handle):
                    self.overlay.add_edge(writer_handle, handle, 1)
            count = self._direct_counts.get(reader, 0) + len(added_handles)
            self._direct_counts[reader] = count
            if count > self.direct_edge_threshold:
                self._rebuild_reader(reader, self._query_inputs(reader))

    def _process_removals(self, reader: NodeId, removed: Set[NodeId]) -> None:
        overlay = self.overlay
        handle = overlay.reader_of.get(reader)
        if handle is None:
            return
        removed_handles = {
            overlay.writer_of[w] for w in removed if w in overlay.writer_of
        }
        # Classify the reader's inputs by whether they are touched.
        touched_partials: List[int] = []
        for src in list(overlay.inputs[handle]):
            if src in removed_handles:
                overlay.remove_edge(src, handle)  # direct edge: trivial fix
            elif overlay.kinds[src] is NodeKind.PARTIAL:
                cover = self.state.coverage.get(src, frozenset())
                if cover & removed_handles:
                    touched_partials.append(src)
        if not touched_partials:
            return
        if len(touched_partials) > self.affected_threshold or any(
            src not in self.state.pure for src in touched_partials
        ):
            self._rebuild_reader(reader, self._query_inputs(reader))
            return
        # Local fix: detach the reader from each touched aggregate and
        # re-cover the aggregate's surviving contribution.
        for src in touched_partials:
            overlay.remove_edge(src, handle)
            survivors = self.state.coverage[src] - removed_handles
            if survivors:
                for piece in self.state.cover(set(survivors)):
                    if not overlay.has_edge(piece, handle):
                        overlay.add_edge(piece, handle, 1)
        self.state.prune_orphans(touched_partials)

    # ------------------------------------------------------------------
    # node removal
    # ------------------------------------------------------------------

    def _remove_node(self, node: NodeId) -> None:
        # The reader side: drop its query.
        if node in self.overlay.reader_of:
            self._drop_reader(node)
            old = self.current_inputs.pop(node, set())
            for writer in old:
                bucket = self._feeds.get(writer)
                if bucket is not None:
                    bucket.discard(node)
        # The writer side: every reader that consumed it must shed it.
        for reader in sorted(self._feeds.pop(node, set()), key=repr):
            self._refresh_reader(reader)
        # Any residual consumers (stale aggregates) force a rebuild of the
        # readers downstream of them.
        writer_handle = self.overlay.writer_of.get(node)
        if writer_handle is not None:
            residual = list(self.overlay.outputs[writer_handle])
            if residual:
                downstream_readers = {
                    self.overlay.labels[h]
                    for h in self.overlay.downstream(writer_handle)
                    if self.overlay.kinds[h] is NodeKind.READER
                }
                for reader in sorted(downstream_readers, key=repr):
                    inputs = self._query_inputs(reader)
                    if inputs:
                        self._rebuild_reader(reader, inputs)
                    else:
                        self._drop_reader(reader)
                self.state.prune_orphans(residual)
            self.overlay.writer_of.pop(node, None)
            self.overlay.mark_dirty(writer_handle)  # ditto: direct pop
            self.state._unregister(writer_handle)

    # ------------------------------------------------------------------

    def live_bipartite(self) -> BipartiteGraph:
        """The current ``AG`` implied by the mirror (for validation)."""
        return BipartiteGraph(
            {reader: tuple(inputs) for reader, inputs in self.current_inputs.items()}
        )
