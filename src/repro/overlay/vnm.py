"""VNM-family overlay construction (paper Sections 3.2.1–3.2.4).

Four variants share one driver:

* ``vnm`` — the baseline Virtual Node Mining adaptation of Buehrer &
  Chellapilla: shingle-sort the readers, chunk them into fixed-size groups,
  build an FP-tree per group, and replace mined bicliques with partial
  aggregation (virtual) nodes.  Iterating re-mines the rewritten graph,
  producing multi-level overlays.
* ``vnm_a`` — *adaptive* chunk sizing: start large (default 100) and shrink
  the chunk between iterations to the smallest ``c`` that would have kept
  90% of the iteration's benefit (Section 3.2.2), so early iterations catch
  big bicliques and later ones catch the small leftovers.
* ``vnm_n`` — quasi-bicliques via *negative edges* (Section 3.2.3): readers
  are inserted along up to ``k1`` tree paths allowing at most ``k2`` items
  they do not actually contain; such items are subtracted through negative
  overlay edges.  Only valid for subtractable aggregates.
* ``vnm_d`` — duplicate-insensitive mining (Section 3.2.4): reader groups
  overlap by ``p%`` and mined edges stay available (tracked in the tree's
  mined sets, charged by the benefit function), so bicliques may reuse
  edges, which is safe for MAX-like aggregates.

The driver operates directly on an :class:`~repro.core.overlay.Overlay`
seeded with the identity (direct writer→reader) edges; transactions for
mining are the readers' *current* positive input lists, so virtual nodes
from earlier iterations participate as items (and, for the duplicate-
sensitive variants, as transactions too — this is what creates
virtual→virtual edges and hence multi-level overlays).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.overlay import NodeKind, Overlay
from repro.graph.bipartite import BipartiteGraph
from repro.overlay.fptree import Biclique, FPTree
from repro.overlay.shingles import chunk, shingle_order

_VARIANTS = ("vnm", "vnm_a", "vnm_n", "vnm_d")


@dataclass
class VNMConfig:
    """Tunable parameters for the VNM family."""

    variant: str = "vnm_a"
    chunk_size: int = 100
    iterations: int = 10
    #: VNM_A: keep the smallest chunk preserving this benefit fraction.
    adapt_keep_fraction: float = 0.9
    #: Lower clamp for adaptive chunk shrinking.  Small is good here:
    #: tiny groups make the in-group frequency order put the readers'
    #: intersection first, aligning prefixes perfectly (pairwise merging,
    #: stacked into multi-level overlays across iterations).
    min_chunk_size: int = 3
    #: VNM_N: number of tree paths a reader may be inserted along.
    k1: int = 2
    #: VNM_N: maximum negative edges per quasi-biclique path.  The paper
    #: uses 5 on graphs three orders of magnitude larger; at our reader-group
    #: sizes quasi-bicliques stay profitable only when nearly complete, so
    #: the default is tighter (Figure 11(b)'s sweep covers 0..5).
    k2: int = 3
    #: VNM_D: fraction of readers shared by consecutive groups.
    overlap: float = 0.2
    #: Items must appear in at least this many of a group's transactions.
    min_item_frequency: int = 2
    num_shingles: int = 2
    seed: int = 2014
    #: Mine virtual nodes' own input lists as transactions (multi-level).
    virtual_transactions: bool = True

    def __post_init__(self) -> None:
        if self.variant not in _VARIANTS:
            raise ValueError(f"variant must be one of {_VARIANTS}")
        if self.chunk_size < 2:
            raise ValueError("chunk_size must be >= 2")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not 0.0 < self.adapt_keep_fraction <= 1.0:
            raise ValueError("adapt_keep_fraction must be in (0, 1]")


@dataclass
class IterationStats:
    """Per-iteration telemetry (drives Figures 8, 9, 10)."""

    iteration: int
    chunk_size: int
    bicliques: int
    edges_saved: int
    negative_edges_added: int
    sharing_index: float
    elapsed_seconds: float
    memory_estimate: int
    benefit_by_width: Dict[int, int] = field(default_factory=dict)


@dataclass
class ConstructionResult:
    """An overlay plus the per-iteration statistics of its construction."""

    overlay: Overlay
    stats: List[IterationStats]
    config: VNMConfig

    @property
    def sharing_index_trace(self) -> List[float]:
        """Sharing index after each iteration (Figure 8's series)."""
        return [s.sharing_index for s in self.stats]

    @property
    def total_seconds(self) -> float:
        """Total construction wall time across iterations."""
        return sum(s.elapsed_seconds for s in self.stats)


def build_vnm(ag: BipartiteGraph, config: Optional[VNMConfig] = None, **overrides) -> ConstructionResult:
    """Construct an overlay for ``ag`` with the configured VNM variant."""
    if config is None:
        config = VNMConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")
    builder = _VNMBuilder(ag, config)
    return builder.run()


class _VNMBuilder:
    """Stateful driver running VNM iterations over a working overlay."""

    def __init__(self, ag: BipartiteGraph, config: VNMConfig) -> None:
        self.ag = ag
        self.config = config
        self.overlay = Overlay.identity(ag)
        self.duplicate_insensitive = config.variant == "vnm_d"
        self._peak_tree_nodes = 0

    # ------------------------------------------------------------------

    def run(self) -> ConstructionResult:
        """Execute all configured iterations and collect statistics."""
        stats: List[IterationStats] = []
        chunk_size = self.config.chunk_size
        for iteration in range(1, self.config.iterations + 1):
            started = time.perf_counter()
            outcome = self._run_iteration(chunk_size)
            elapsed = time.perf_counter() - started
            stats.append(
                IterationStats(
                    iteration=iteration,
                    chunk_size=chunk_size,
                    bicliques=outcome["bicliques"],
                    edges_saved=outcome["edges_saved"],
                    negative_edges_added=outcome["negative_edges"],
                    sharing_index=self.overlay.sharing_index(self.ag),
                    elapsed_seconds=elapsed,
                    memory_estimate=self.overlay.memory_estimate()
                    + self._peak_tree_nodes * 200,
                    benefit_by_width=outcome["benefit_by_width"],
                )
            )
            if outcome["bicliques"] == 0:
                break
            # VNM_N and VNM_D "employ the same basic structure as the VNM_A
            # algorithm" (Sections 3.2.3/3.2.4): all variants except the
            # fixed-chunk baseline adapt their chunk size between iterations.
            if self.config.variant != "vnm":
                chunk_size = max(
                    self.config.min_chunk_size,
                    _adapt_chunk_size(
                        chunk_size,
                        outcome["benefit_by_width"],
                        self.config.adapt_keep_fraction,
                    ),
                )
        return ConstructionResult(overlay=self.overlay, stats=stats, config=self.config)

    # ------------------------------------------------------------------

    def _transactions(self) -> Dict[int, List[int]]:
        """Current positive input lists of readers (and virtual nodes).

        Virtual nodes participate as transactions in every variant — this is
        what creates virtual→virtual edges and hence multi-level overlays.
        They are always inserted *plainly* (never along quasi-biclique
        paths), which keeps every item they can be covered by strictly
        upstream of them, so rewiring can never create a cycle.
        """
        overlay = self.overlay
        transactions: Dict[int, List[int]] = {}
        handles = list(overlay.reader_of.values())
        if self.config.virtual_transactions:
            handles.extend(overlay.partial_handles())
        for handle in handles:
            items = [src for src, sign in overlay.inputs[handle].items() if sign > 0]
            if len(items) >= 2:
                transactions[handle] = items
        return transactions

    def _run_iteration(self, chunk_size: int) -> Dict[str, object]:
        config = self.config
        transactions = self._transactions()
        outcome: Dict[str, object] = {
            "bicliques": 0,
            "edges_saved": 0,
            "negative_edges": 0,
            "benefit_by_width": {},
        }
        if not transactions:
            return outcome
        order = shingle_order(
            transactions, num_hashes=config.num_shingles, seed=config.seed
        )
        overlap = config.overlap if config.variant == "vnm_d" else 0.0
        groups = chunk(order, chunk_size, overlap=overlap)

        # VNM_D defers rewiring to the end of the iteration so overlapping
        # groups can reuse edges; track consumed edges and vn assignments.
        mined_edges: Dict[int, Set[int]] = {}
        vn_assignments: Dict[int, List[int]] = {}

        benefit_by_width: Dict[int, int] = {}
        for group in groups:
            found = self._mine_group(
                group, transactions, mined_edges, vn_assignments
            )
            for biclique in found:
                outcome["bicliques"] += 1  # type: ignore[operator]
                outcome["edges_saved"] += biclique.benefit  # type: ignore[operator]
                outcome["negative_edges"] += sum(  # type: ignore[operator]
                    len(v) for v in biclique.negatives.values()
                )
                width = biclique.width
                benefit_by_width[width] = benefit_by_width.get(width, 0) + biclique.benefit
        outcome["benefit_by_width"] = benefit_by_width

        if self.duplicate_insensitive:
            self._apply_deferred_rewiring(mined_edges, vn_assignments)
        return outcome

    def _mine_group(
        self,
        group: List[int],
        transactions: Dict[int, List[int]],
        mined_edges: Dict[int, Set[int]],
        vn_assignments: Dict[int, List[int]],
    ) -> List[Biclique]:
        config = self.config
        # Per-group item frequencies; rare items cannot join a biclique of
        # width >= 2 within this group, so they are filtered out (they keep
        # their direct overlay edges).
        frequency: Dict[int, int] = {}
        for reader in group:
            for item in transactions[reader]:
                frequency[item] = frequency.get(item, 0) + 1
        eligible = {
            item for item, f in frequency.items() if f >= config.min_item_frequency
        }
        filtered: Dict[int, List[int]] = {}
        for reader in group:
            items = [i for i in transactions[reader] if i in eligible]
            if len(items) >= 2:
                filtered[reader] = items
        if not filtered:
            return []

        rank = {
            item: position
            for position, item in enumerate(
                sorted(eligible, key=lambda i: (-frequency[i], i))
            )
        }
        tree = FPTree(rank)
        for reader in group:
            items = filtered.get(reader)
            if items is None:
                continue
            is_partial = self.overlay.kinds[reader] is NodeKind.PARTIAL
            if config.variant == "vnm_n" and not is_partial:
                forbidden = {
                    src
                    for src, sign in self.overlay.inputs[reader].items()
                    if sign < 0
                }
                self._insert_with_negatives(tree, reader, items, forbidden)
            elif config.variant == "vnm_d":
                tree.insert(reader, items, mined_items=mined_edges.get(reader, ()))
            else:
                tree.insert(reader, items)
        self._peak_tree_nodes = max(self._peak_tree_nodes, tree.num_nodes)

        # Mine the tree repeatedly.  Extraction removes the consumed readers
        # from the tree (duplicate-sensitive modes); re-inserting them with
        # their *remaining* items keeps mining "the same FP-tree ... with
        # lower benefit" as the paper describes, instead of forfeiting the
        # rest of their sharing potential for this group.
        live_items: Dict[int, Set[int]] = {r: set(items) for r, items in filtered.items()}
        found: List[Biclique] = []
        skip: Set[int] = set()
        while True:
            candidate = tree.mine_best(skip)
            if candidate is None:
                break
            biclique = tree.extract(
                candidate, duplicate_insensitive=self.duplicate_insensitive
            )
            if biclique is None:
                skip.add(id(candidate.node))
                continue
            if self.duplicate_insensitive:
                self._record_deferred(biclique, mined_edges, vn_assignments)
            else:
                self._apply_biclique(biclique)
                for reader in biclique.readers:
                    remaining = live_items.get(reader)
                    if remaining is None:
                        continue
                    remaining -= set(biclique.covered[reader])
                    if len(remaining) >= 2:
                        tree.insert(reader, remaining)
                # Re-insertions can raise supports at previously-skipped
                # nodes, so give them another chance.
                skip.clear()
            found.append(biclique)
        return found

    def _insert_with_negatives(
        self,
        tree: FPTree,
        reader: int,
        items: List[int],
        forbidden_negatives: Set[int],
    ) -> None:
        """VNM_N insertion with an overlay-consistency guard.

        A candidate path is unusable if one of its negative items already has
        a (negative) direct edge to the reader — the overlay permits one edge
        per node pair.  We enforce this by filtering candidates post-hoc via
        a wrapped insert; in practice collisions are rare, so the simple
        approach of delegating and cleaning up is sufficient.
        """
        if not forbidden_negatives:
            tree.insert_with_negatives(
                reader, items, k1=self.config.k1, k2=self.config.k2
            )
            return
        # Conservative fallback: readers that already carry negative edges
        # are inserted plainly; they remain minable through ordinary paths.
        tree.insert(reader, items)

    # ------------------------------------------------------------------
    # overlay rewiring
    # ------------------------------------------------------------------

    def _apply_biclique(self, biclique: Biclique) -> bool:
        """Materialize a duplicate-sensitive biclique in the overlay."""
        overlay = self.overlay
        virtual = overlay.add_partial()
        for item in biclique.items:
            overlay.add_edge(item, virtual, 1)
        for reader in biclique.readers:
            if overlay.kinds[reader] is NodeKind.PARTIAL:
                # Guard against cycles when rewiring a virtual node that was
                # itself inserted along a quasi-biclique path: every biclique
                # item must stay strictly upstream of the rewired node.
                if any(item == reader for item in biclique.items):
                    continue
            for item in biclique.covered[reader]:
                overlay.remove_edge(item, reader)
            overlay.add_edge(virtual, reader, 1)
            for item in biclique.negatives[reader]:
                overlay.add_edge(item, reader, -1)
        return True

    def _record_deferred(
        self,
        biclique: Biclique,
        mined_edges: Dict[int, Set[int]],
        vn_assignments: Dict[int, List[int]],
    ) -> bool:
        """VNM_D: create the virtual node now, rewire readers at iteration end."""
        overlay = self.overlay
        virtual = overlay.add_partial()
        for item in biclique.items:
            overlay.add_edge(item, virtual, 1)
        for reader in biclique.readers:
            mined_edges.setdefault(reader, set()).update(biclique.covered[reader])
            vn_assignments.setdefault(reader, []).append(virtual)
        return True

    def _apply_deferred_rewiring(
        self,
        mined_edges: Dict[int, Set[int]],
        vn_assignments: Dict[int, List[int]],
    ) -> None:
        overlay = self.overlay
        for reader, consumed in mined_edges.items():
            for item in consumed:
                if overlay.has_edge(item, reader):
                    overlay.remove_edge(item, reader)
            for virtual in vn_assignments.get(reader, ()):
                if not overlay.has_edge(virtual, reader):
                    overlay.add_edge(virtual, reader, 1)


def _adapt_chunk_size(
    current: int, benefit_by_width: Dict[int, int], keep_fraction: float
) -> int:
    """VNM_A chunk adaptation (Section 3.2.2).

    Choose the smallest ``c <= current`` such that bicliques of width ``<= c``
    delivered more than ``keep_fraction`` of this iteration's total benefit.
    """
    if not benefit_by_width:
        return current
    total = sum(benefit_by_width.values())
    if total <= 0:
        return current
    threshold = keep_fraction * total
    running = 0
    for width in sorted(benefit_by_width):
        running += benefit_by_width[width]
        if running > threshold:
            return max(2, min(current, width))
    return current
