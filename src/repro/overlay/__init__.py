"""Overlay construction: the VNM family, IOB, metrics, and maintenance."""

from typing import Optional

from repro.core.aggregates import AggregateFunction
from repro.graph.bipartite import BipartiteGraph
from repro.overlay.dynamic import OverlayMaintainer
from repro.overlay.fptree import Biclique, FPTree, mine_all
from repro.overlay.iob import IOBState, build_iob
from repro.overlay.metrics import (
    OverlaySummary,
    average_depth,
    compression_ratio,
    depth_cdf,
    depth_distribution,
    summarize,
)
from repro.overlay.shingles import ShingleHasher, chunk, shingle_order
from repro.overlay.vnm import ConstructionResult, IterationStats, VNMConfig, build_vnm

#: Algorithms selectable by name in :func:`construct_overlay` and the engine.
ALGORITHMS = ("identity", "vnm", "vnm_a", "vnm_n", "vnm_d", "iob")


def construct_overlay(
    ag: BipartiteGraph,
    algorithm: str = "vnm_a",
    aggregate: Optional[AggregateFunction] = None,
    **params,
) -> ConstructionResult:
    """Build an overlay for ``ag`` with the named algorithm.

    ``aggregate`` enables the paper's safety checks: ``vnm_n`` requires a
    subtractable aggregate (negative edges need efficient subtraction) and
    ``vnm_d`` requires a duplicate-insensitive one (Section 3.1).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; options: {ALGORITHMS}")
    if aggregate is not None:
        if algorithm == "vnm_n" and not aggregate.subtractable:
            raise ValueError(
                f"vnm_n uses negative edges, which {aggregate.name} cannot subtract"
            )
        if algorithm == "vnm_d" and not aggregate.duplicate_insensitive:
            raise ValueError(
                f"vnm_d reuses edges, which duplicate-sensitive {aggregate.name} forbids"
            )
    if algorithm == "identity":
        from repro.core.overlay import Overlay

        overlay = Overlay.identity(ag)
        return ConstructionResult(overlay=overlay, stats=[], config=VNMConfig())
    if algorithm == "iob":
        return build_iob(ag, **params)
    return build_vnm(ag, variant=algorithm, **params)


__all__ = [
    "ALGORITHMS",
    "construct_overlay",
    "Biclique",
    "FPTree",
    "mine_all",
    "IOBState",
    "build_iob",
    "OverlayMaintainer",
    "OverlaySummary",
    "average_depth",
    "compression_ratio",
    "depth_cdf",
    "depth_distribution",
    "summarize",
    "ShingleHasher",
    "chunk",
    "shingle_order",
    "ConstructionResult",
    "IterationStats",
    "VNMConfig",
    "build_vnm",
]
