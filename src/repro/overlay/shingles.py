"""Min-hash shingle ordering of readers (paper Section 3.2.1).

VNM's scalability trick is to group readers into small chunks and only mine
bicliques within a chunk.  For that to find anything, readers with similar
input lists must land in the same chunk.  The *shingle* of a reader is a
min-hash signature of its input list: readers with highly-overlapping
adjacency lists collide on their shingles with high probability (Broder;
used for web-graph compression by Chierichetti et al. and Buehrer et al.).
Sorting readers lexicographically by a small vector of shingles therefore
clusters similar readers next to each other.

Hashing is deterministic: items are first mapped to dense integers, then
passed through seeded universal hash functions ``h(x) = (a·x + b) mod p``.
Python's built-in ``hash`` is process-salted and would make runs
irreproducible.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

Item = Hashable

#: A large Mersenne prime keeps the universal hash family well distributed.
_PRIME = (1 << 61) - 1


class ShingleHasher:
    """A family of ``num_hashes`` seeded universal hash functions."""

    def __init__(self, num_hashes: int = 2, seed: int = 2014) -> None:
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        rng = random.Random(seed)
        self._coeffs: List[Tuple[int, int]] = [
            (rng.randrange(1, _PRIME), rng.randrange(_PRIME)) for _ in range(num_hashes)
        ]
        self._item_ids: Dict[Item, int] = {}

    def _item_id(self, item: Item) -> int:
        existing = self._item_ids.get(item)
        if existing is not None:
            return existing
        new_id = len(self._item_ids) + 1
        self._item_ids[item] = new_id
        return new_id

    def shingles(self, items: Iterable[Item]) -> Tuple[int, ...]:
        """Min-hash signature of an item set (one min per hash function)."""
        ids = [self._item_id(item) for item in items]
        if not ids:
            return tuple(_PRIME for _ in self._coeffs)
        return tuple(
            min((a * x + b) % _PRIME for x in ids) for a, b in self._coeffs
        )


def shingle_order(
    transactions: Dict[Hashable, Sequence[Item]],
    num_hashes: int = 2,
    seed: int = 2014,
) -> List[Hashable]:
    """Order transaction keys (readers) by their min-hash signature.

    Ties are broken by a deterministic key of the reader id itself so the
    order is total and stable across runs.
    """
    hasher = ShingleHasher(num_hashes=num_hashes, seed=seed)
    keyed = [
        (hasher.shingles(items), type(reader).__name__, repr(reader), reader)
        for reader, items in transactions.items()
    ]
    keyed.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in keyed]


def chunk(ordered: Sequence[Hashable], size: int, overlap: float = 0.0) -> List[List[Hashable]]:
    """Split an ordered reader list into groups of ``size``.

    ``overlap`` (the ``p`` of ``VNM_D``, Section 3.2.4) is the fraction of
    readers two *consecutive* groups share; 0 gives the disjoint partition
    used by VNM / VNM_A / VNM_N.
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    if not 0.0 <= overlap < 1.0:
        raise ValueError("overlap must be in [0, 1)")
    step = max(1, int(round(size * (1.0 - overlap))))
    groups: List[List[Hashable]] = []
    start = 0
    n = len(ordered)
    while start < n:
        group = list(ordered[start : start + size])
        groups.append(group)
        if start + size >= n:
            break
        start += step
    return groups
