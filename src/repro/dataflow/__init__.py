"""Dataflow (push/pull) decisions: costs, frequencies, min-cut, greedy, splitting."""

from repro.dataflow.costs import CostModel, calibrate
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies
from repro.dataflow.greedy import greedy_dataflow
from repro.dataflow.latency import (
    decide_dataflow_with_latency_budget,
    estimated_read_latency,
    read_latency_profile,
)
from repro.dataflow.maxflow import INF, FlowNetwork, edmonds_karp
from repro.dataflow.mincut import (
    DataflowStats,
    assignment_cost,
    decide_dataflow,
    node_weights,
    partition_value,
    solve_dmp,
)
from repro.dataflow.pruning import PruneResult, connected_components, prune
from repro.dataflow.splitting import best_split, split_nodes

__all__ = [
    "CostModel",
    "calibrate",
    "FrequencyModel",
    "compute_push_pull_frequencies",
    "greedy_dataflow",
    "decide_dataflow_with_latency_budget",
    "estimated_read_latency",
    "read_latency_profile",
    "INF",
    "FlowNetwork",
    "edmonds_karp",
    "DataflowStats",
    "assignment_cost",
    "decide_dataflow",
    "node_weights",
    "partition_value",
    "solve_dmp",
    "PruneResult",
    "connected_components",
    "prune",
    "best_split",
    "split_nodes",
]
