"""Partial pre-computation by splitting aggregation nodes (Section 4.7).

Per-node push/pull decisions can miss a hybrid optimum: an aggregation node
whose inputs mix rarely-updated and hot writers is best served by
pre-aggregating the quiet inputs behind a new push node while pulling the
hot remainder on demand (the paper's Figure 7).

For each aggregation node ``v`` with pull frequency ``f`` and input push
frequencies ``f_1 ≤ … ≤ f_k`` (sorted ascending), splitting the ``l``
quietest inputs into a new node ``v'`` costs::

    cost(l) = (Σ_{i≤l} f_i) · H(l)  +  f · L(k − l + 1)

(``v'`` absorbs the quiet pushes; ``v`` pulls its remaining ``k − l``
inputs plus ``v'``).  We pick the ``l`` minimizing this and split whenever
it beats both unsplit extremes ``min(f_h(v)·H(k), f·L(k))``.  Decisions are
re-run afterwards (the split node is intended to be push and ``v`` pull, but
the global min-cut has the final say).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.overlay import NodeKind, Overlay
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies


def best_split(
    input_push_freqs: List[float],
    pull_freq: float,
    push_freq: float,
    cost_model: CostModel,
) -> Optional[Tuple[int, float]]:
    """Return ``(l, cost)`` of the best proper split, or ``None``.

    ``input_push_freqs`` must be sorted ascending.  A split is proper when
    ``0 < l < k`` and its cost strictly beats both unsplit alternatives.
    """
    k = len(input_push_freqs)
    if k < 3:
        return None
    unsplit = min(
        push_freq * cost_model.push_cost(k),
        pull_freq * cost_model.pull_cost(k),
    )
    best: Optional[Tuple[int, float]] = None
    prefix = 0.0
    for l in range(1, k):
        prefix += input_push_freqs[l - 1]
        cost = prefix * cost_model.push_cost(l) + pull_freq * cost_model.pull_cost(
            k - l + 1
        )
        if cost < unsplit and (best is None or cost < best[1]):
            best = (l, cost)
    return best


def split_nodes(
    overlay: Overlay,
    frequencies: FrequencyModel,
    cost_model: Optional[CostModel] = None,
    min_fan_in: int = 3,
) -> List[int]:
    """Apply the splitting optimization in place; returns new node handles.

    Only aggregation nodes with all-positive input edges are considered
    (splitting across a negative edge would change semantics).  Frequencies
    are computed once up front; within one pass the decision for a node uses
    the pre-pass frequencies, which is exact because a split only introduces
    nodes *upstream* of the split node and never alters the push frequencies
    of other nodes' existing inputs.
    """
    if cost_model is None:
        cost_model = CostModel.constant_linear()
    fh, fl = compute_push_pull_frequencies(overlay, frequencies)
    created: List[int] = []
    original_nodes = overlay.num_nodes  # nodes added below are not re-examined
    for handle in range(original_nodes):
        kind = overlay.kinds[handle]
        if kind is NodeKind.WRITER:
            continue
        inputs = overlay.inputs[handle]
        if len(inputs) < min_fan_in:
            continue
        if any(sign < 0 for sign in inputs.values()):
            continue
        ordered = sorted(inputs, key=lambda src: (fh[src], src))
        freqs = [fh[src] for src in ordered]
        choice = best_split(freqs, fl[handle], fh[handle], cost_model)
        if choice is None:
            continue
        split_at, _ = choice
        quiet = ordered[:split_at]
        fresh = overlay.add_partial()
        for src in quiet:
            overlay.remove_edge(src, handle)
            overlay.add_edge(src, fresh, 1)
        overlay.add_edge(fresh, handle, 1)
        created.append(fresh)
    return created
