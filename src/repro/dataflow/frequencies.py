"""Read/write frequencies and their push/pull propagation (Section 4.1).

Each data-graph node has an expected *read frequency* ``r(v)`` (how often
its query result is requested) and *write frequency* ``w(v)`` (how often its
content updates).  From these, every overlay node ``u`` gets:

* ``f_h(u)`` — its **push frequency**: how often data would be pushed *to*
  ``u`` if every node were annotated push.  Writers start with their write
  frequency; aggregation nodes sum the push frequencies of their inputs
  (every input update reaches them).
* ``f_l(u)`` — its **pull frequency**: how often data would be pulled *from*
  ``u`` if every node were annotated pull.  Readers start with their read
  frequency; each node adds its pull frequency onto all of its inputs.

Both are one topological sweep.  Edge signs are irrelevant here: a negative
edge moves exactly as much data as a positive one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.overlay import NodeKind, Overlay

NodeId = Hashable


@dataclass
class FrequencyModel:
    """Per-node expected read and write frequencies.

    Missing nodes default to 0 for both (a node that never writes
    contributes no pushes; one never read contributes no pulls).
    """

    read: Dict[NodeId, float] = field(default_factory=dict)
    write: Dict[NodeId, float] = field(default_factory=dict)

    def read_freq(self, node: NodeId) -> float:
        return self.read.get(node, 0.0)

    def write_freq(self, node: NodeId) -> float:
        return self.write.get(node, 0.0)

    # -- constructors ----------------------------------------------------

    @classmethod
    def uniform(
        cls, nodes: Iterable[NodeId], read: float = 1.0, write: float = 1.0
    ) -> "FrequencyModel":
        """Every node reads/writes at the same expected rate."""
        nodes = list(nodes)
        return cls(
            read={n: read for n in nodes},
            write={n: write for n in nodes},
        )

    @classmethod
    def zipf(
        cls,
        nodes: Iterable[NodeId],
        alpha: float = 1.0,
        total_events: float = 100_000.0,
        write_read_ratio: float = 1.0,
        seed: int = 17,
    ) -> "FrequencyModel":
        """Zipfian activity (Section 5.1): node ranks are shuffled by
        ``seed``; read frequency is linear in write frequency with the
        requested write:read ratio."""
        nodes = list(nodes)
        if not nodes:
            return cls()
        rng = random.Random(seed)
        ranks = list(range(1, len(nodes) + 1))
        rng.shuffle(ranks)
        raw = [1.0 / (rank ** alpha) for rank in ranks]
        norm = sum(raw)
        write_total = total_events * write_read_ratio / (1.0 + write_read_ratio)
        read_total = total_events - write_total
        write = {
            node: write_total * weight / norm for node, weight in zip(nodes, raw)
        }
        read = {node: read_total * weight / norm for node, weight in zip(nodes, raw)}
        return cls(read=read, write=write)

    @classmethod
    def from_trace(cls, events: Iterable[Tuple[str, NodeId]]) -> "FrequencyModel":
        """Count frequencies from an observed ``("read"|"write", node)`` trace."""
        read: Dict[NodeId, float] = {}
        write: Dict[NodeId, float] = {}
        for kind, node in events:
            bucket = read if kind == "read" else write
            bucket[node] = bucket.get(node, 0.0) + 1.0
        return cls(read=read, write=write)

    def scaled(self, read_scale: float = 1.0, write_scale: float = 1.0) -> "FrequencyModel":
        """A copy with all frequencies multiplied by the given factors."""
        return FrequencyModel(
            read={n: f * read_scale for n, f in self.read.items()},
            write={n: f * write_scale for n, f in self.write.items()},
        )


def compute_push_pull_frequencies(
    overlay: Overlay, frequencies: FrequencyModel
) -> Tuple[List[float], List[float]]:
    """Compute ``(f_h, f_l)`` for every overlay node (Section 4.1)."""
    order = overlay.topological_order()
    fh = [0.0] * overlay.num_nodes
    fl = [0.0] * overlay.num_nodes

    for handle in order:  # downstream sweep: push frequencies
        if overlay.kinds[handle] is NodeKind.WRITER:
            fh[handle] = frequencies.write_freq(overlay.labels[handle])
        else:
            fh[handle] = sum(fh[src] for src in overlay.inputs[handle])

    for handle in reversed(order):  # upstream sweep: pull frequencies
        if overlay.kinds[handle] is NodeKind.READER:
            fl[handle] = frequencies.read_freq(overlay.labels[handle])
        for src in overlay.inputs[handle]:
            fl[src] += fl[handle]
    return fh, fl
