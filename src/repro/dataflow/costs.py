"""Push/pull cost models ``H(k)`` and ``L(k)`` (paper Section 4.2).

``H(k)`` is the average cost of one incremental (push) update at an
aggregation node with ``k`` inputs; ``L(k)`` the average cost of one
on-demand (pull) evaluation.  For SUM-like aggregates ``H(k) ∝ 1`` and
``L(k) ∝ k``; for MAX with a priority queue ``H(k) ∝ log k``.  The paper
either takes these as given or *calibrates* them by invoking the aggregate
over a range of input sizes and fitting; both paths are provided here.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.aggregates import AggregateFunction


@dataclass(frozen=True)
class CostModel:
    """A pair of cost functions ``(H, L)``.

    ``push(k)`` and ``pull(k)`` must be positive for ``k >= 1``.  The
    ``push_scale``/``pull_scale`` constructors let experiments sweep the
    push:pull cost *ratio* (Figure 13(c)) without touching the shape.
    """

    push: Callable[[int], float]
    pull: Callable[[int], float]
    description: str = "custom"

    def push_cost(self, k: int) -> float:
        return self.push(max(1, k))

    def pull_cost(self, k: int) -> float:
        return self.pull(max(1, k))

    @classmethod
    def constant_linear(
        cls, push_unit: float = 1.0, pull_unit: float = 1.0
    ) -> "CostModel":
        """``H(k) = push_unit``, ``L(k) = pull_unit · k`` (the SUM regime)."""
        return cls(
            push=lambda k: push_unit,
            pull=lambda k: pull_unit * k,
            description=f"H(k)={push_unit}, L(k)={pull_unit}*k",
        )

    @classmethod
    def log_linear(cls, push_unit: float = 1.0, pull_unit: float = 1.0) -> "CostModel":
        """``H(k) = push_unit · (1 + log2 k)``, ``L(k) = pull_unit · k``
        (the MAX-with-priority-queue regime)."""
        return cls(
            push=lambda k: push_unit * (1.0 + math.log2(k) if k > 1 else 1.0),
            pull=lambda k: pull_unit * k,
            description=f"H(k)={push_unit}*(1+log2 k), L(k)={pull_unit}*k",
        )

    @classmethod
    def for_aggregate(
        cls,
        aggregate: AggregateFunction,
        push_scale: float = 1.0,
        pull_scale: float = 1.0,
    ) -> "CostModel":
        """Use the aggregate's own default cost hints, optionally rescaled."""
        return cls(
            push=lambda k: push_scale * aggregate.default_push_cost(k),
            pull=lambda k: pull_scale * aggregate.default_pull_cost(k),
            description=f"defaults({aggregate.name}) x(push={push_scale}, pull={pull_scale})",
        )

    def scaled(self, push_scale: float = 1.0, pull_scale: float = 1.0) -> "CostModel":
        """A copy with H and L multiplied by the given factors."""
        return CostModel(
            push=lambda k: push_scale * self.push(k),
            pull=lambda k: pull_scale * self.pull(k),
            description=f"{self.description} x({push_scale},{pull_scale})",
        )


def _fit_affine(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ≈ a·x + b`` without requiring numpy."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var = sum((x - mean_x) ** 2 for x in xs)
    if var == 0:
        return 0.0, mean_y
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var
    return slope, mean_y - slope * mean_x


def calibrate(
    aggregate: AggregateFunction,
    ks: Optional[Sequence[int]] = None,
    repetitions: int = 200,
    value_factory: Callable[[int], object] = lambda i: float(i % 97),
) -> CostModel:
    """Measure ``H``/``L`` for an aggregate by timing its PAO operations.

    ``L(k)`` is fit as an affine function of ``k`` from timed ``combine``
    calls over ``k`` PAOs; ``H`` is the measured cost of one incremental
    ``merge`` (independent of ``k`` for group aggregates; charged a
    logarithmic surcharge for lattice aggregates, matching their engine
    implementation).  This is the calibration process Section 4.2 mentions.
    """
    if ks is None:
        ks = (1, 2, 4, 8, 16, 32)
    paos_by_k = {
        k: [aggregate.lift(value_factory(i)) for i in range(k)] for k in ks
    }

    pull_times: List[float] = []
    for k in ks:
        paos = paos_by_k[k]
        start = time.perf_counter()
        for _ in range(repetitions):
            aggregate.combine(paos)
        pull_times.append((time.perf_counter() - start) / repetitions)
    slope, intercept = _fit_affine([float(k) for k in ks], pull_times)
    slope = max(slope, 1e-9)
    intercept = max(intercept, 0.0)

    sample = aggregate.lift(value_factory(1))
    acc = aggregate.identity()
    start = time.perf_counter()
    for _ in range(repetitions):
        acc = aggregate.merge(acc, sample)
    push_unit = max((time.perf_counter() - start) / repetitions, 1e-9)

    if aggregate.subtractable:
        push_fn = lambda k: push_unit  # noqa: E731 - tiny closures
    else:
        push_fn = lambda k: push_unit * (1.0 + (math.log2(k) if k > 1 else 0.0))  # noqa: E731
    return CostModel(
        push=push_fn,
        pull=lambda k: intercept + slope * k,
        description=f"calibrated({aggregate.name})",
    )
