"""Linear-time greedy alternative to the max-flow decisions (Section 4.6).

The paper sketches this fallback for the (never observed in their
experiments) case where pruning leaves a huge connected component.  Nodes
are visited in topological (writers-first) order and assigned one of
*push*, *pull*, or *tentative pull*; tentative decisions resolve when a
downstream node forces them.  The two invariants maintained:

1. a tentative-pull node is never downstream of a (tentative-)pull node,
2. a push node is never downstream of a (tentative-)pull node,

guarantee the final assignment is consistent.  Each edge is examined at
most twice, so the algorithm is linear in the overlay size.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set

from repro.core.overlay import Decision, NodeKind, Overlay
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies
from repro.dataflow.mincut import DataflowStats, assignment_cost, node_weights


class _State(enum.Enum):
    PUSH = "push"
    PULL = "pull"
    TENTATIVE = "tentative_pull"


def greedy_dataflow(
    overlay: Overlay,
    frequencies: FrequencyModel,
    cost_model: Optional[CostModel] = None,
    window_size: float = 1.0,
    force_push_readers: bool = False,
) -> DataflowStats:
    """Assign decisions with the Section 4.6 greedy pass.

    Same signature/contract as :func:`repro.dataflow.mincut.decide_dataflow`
    but heuristic: fast and consistent, not necessarily optimal.
    """
    if cost_model is None:
        cost_model = CostModel.constant_linear()
    fh, fl = compute_push_pull_frequencies(overlay, frequencies)
    force: Optional[Set[int]] = None
    if force_push_readers:
        # Continuous mode: a push reader needs its whole upstream closure
        # push.  The min-cut gets this from its ∞ edges; the greedy must
        # force the closure explicitly or rule 1 (pull input ⇒ pull) would
        # override the reader's forced preference.
        force = set(overlay.reader_of.values())
        stack = list(force)
        while stack:
            handle = stack.pop()
            for src in overlay.inputs[handle]:
                if src not in force:
                    force.add(src)
                    stack.append(src)
    weights = node_weights(
        overlay, fh, fl, cost_model, window_size=window_size, force_push=force
    )

    state: Dict[int, _State] = {}
    for handle in overlay.topological_order():
        if overlay.kinds[handle] is NodeKind.WRITER:
            state[handle] = _State.PUSH
            continue
        inputs = list(overlay.inputs[handle])
        input_states = [state[src] for src in inputs]
        wants_pull = weights[handle] < 0  # PULL cheaper than PUSH

        if any(s is _State.PULL for s in input_states):
            state[handle] = _State.PULL
            continue
        tentative_inputs = [
            src for src in inputs if state[src] is _State.TENTATIVE
        ]
        if wants_pull:
            if tentative_inputs:
                # Pulling here strands the tentative inputs on the pull side.
                for src in tentative_inputs:
                    state[src] = _State.PULL
                state[handle] = _State.PULL
            else:
                state[handle] = _State.TENTATIVE
            continue
        # Node prefers push.
        if not tentative_inputs:
            state[handle] = _State.PUSH
            continue
        # Greedy local resolution: flip the tentative inputs together with
        # this node to whichever side is cheaper in aggregate.
        # weights = PULL − PUSH: choosing push "loses" max(0, w) per node,
        # choosing pull "loses" max(0, −w); compare total regret.
        push_regret = sum(max(0.0, weights[src]) for src in tentative_inputs) + max(
            0.0, weights[handle]
        )
        pull_regret = sum(max(0.0, -weights[src]) for src in tentative_inputs) + max(
            0.0, -weights[handle]
        )
        if push_regret <= pull_regret:
            for src in tentative_inputs:
                state[src] = _State.PUSH
            state[handle] = _State.PUSH
        else:
            for src in tentative_inputs:
                state[src] = _State.PULL
            state[handle] = _State.PULL

    stats = DataflowStats(nodes_total=len(weights))
    push_count = 0
    pull_count = 0
    for handle, node_state in state.items():
        if overlay.kinds[handle] is NodeKind.WRITER:
            continue
        if node_state is _State.PUSH:
            overlay.set_decision(handle, Decision.PUSH)
            push_count += 1
        else:  # leftover tentative decisions become pull (paper's epilogue)
            overlay.set_decision(handle, Decision.PULL)
            pull_count += 1
    stats.push_nodes = push_count
    stats.pull_nodes = pull_count
    stats.total_cost = assignment_cost(
        overlay, fh, fl, cost_model, window_size=window_size
    )
    if not overlay.decisions_consistent():
        raise AssertionError("greedy produced inconsistent decisions (bug)")
    return stats
