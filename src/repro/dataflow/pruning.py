"""Pruning rules P1/P2 and connected-component splitting (Section 4.5).

Running max-flow on a whole overlay is infeasible at scale; the paper's
pruning pass shrinks it dramatically first:

* **P1** — recursively remove nodes with positive weight (push-leaning) and
  no remaining incoming edges, assigning them *push*.  Nothing upstream
  constrains them, and Theorem 4.2 shows this never changes the optimum.
* **P2** — recursively remove nodes with negative weight (pull-leaning) and
  no remaining outgoing edges, assigning them *pull*.

What survives is the set of genuinely conflicted nodes; it typically
shatters into many small weakly-connected components (Figure 12), each
solved independently by max-flow.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Set, Tuple

Node = Hashable


@dataclass
class PruneResult:
    """Outcome of the P1/P2 pass over a weighted decision DAG."""

    pushed: Set[Node] = field(default_factory=set)
    pulled: Set[Node] = field(default_factory=set)
    remaining_nodes: Set[Node] = field(default_factory=set)
    remaining_edges: List[Tuple[Node, Node]] = field(default_factory=list)

    @property
    def nodes_before(self) -> int:
        return len(self.pushed) + len(self.pulled) + len(self.remaining_nodes)

    @property
    def nodes_after(self) -> int:
        return len(self.remaining_nodes)


def prune(
    weights: Dict[Node, float], edges: Iterable[Tuple[Node, Node]]
) -> PruneResult:
    """Apply P1/P2 to a DAG whose node weights are ``PULL − PUSH`` benefits.

    Zero-weight nodes are decision-indifferent; they are pruned whenever
    either rule's structural condition holds (a safe extension of the
    paper's strict inequalities — an indifferent node with no incoming
    edges constrains nothing upstream, symmetrically for outgoing).
    """
    edge_list = [(u, v) for u, v in edges]
    out_degree: Dict[Node, int] = collections.Counter()
    in_degree: Dict[Node, int] = collections.Counter()
    successors: Dict[Node, List[Node]] = collections.defaultdict(list)
    predecessors: Dict[Node, List[Node]] = collections.defaultdict(list)
    for u, v in edge_list:
        out_degree[u] += 1
        in_degree[v] += 1
        successors[u].append(v)
        predecessors[v].append(u)

    result = PruneResult()
    removed: Set[Node] = set()
    queue = collections.deque(weights)
    queued = set(weights)
    while queue:
        node = queue.popleft()
        queued.discard(node)
        if node in removed:
            continue
        weight = weights[node]
        if weight >= 0 and in_degree[node] == 0:
            result.pushed.add(node)
        elif weight <= 0 and out_degree[node] == 0:
            result.pulled.add(node)
        else:
            continue
        removed.add(node)
        for successor in successors[node]:
            if successor not in removed:
                in_degree[successor] -= 1
                if successor not in queued:
                    queue.append(successor)
                    queued.add(successor)
        for predecessor in predecessors[node]:
            if predecessor not in removed:
                out_degree[predecessor] -= 1
                if predecessor not in queued:
                    queue.append(predecessor)
                    queued.add(predecessor)

    result.remaining_nodes = {n for n in weights if n not in removed}
    result.remaining_edges = [
        (u, v) for u, v in edge_list if u not in removed and v not in removed
    ]
    return result


def connected_components(
    nodes: Iterable[Node], edges: Iterable[Tuple[Node, Node]]
) -> List[Tuple[List[Node], List[Tuple[Node, Node]]]]:
    """Weakly-connected components of the residual decision graph."""
    neighbors: Dict[Node, Set[Node]] = collections.defaultdict(set)
    edge_list = list(edges)
    node_set = set(nodes)
    for u, v in edge_list:
        neighbors[u].add(v)
        neighbors[v].add(u)

    seen: Set[Node] = set()
    component_of: Dict[Node, int] = {}
    components: List[List[Node]] = []
    for node in node_set:
        if node in seen:
            continue
        index = len(components)
        members: List[Node] = []
        stack = [node]
        seen.add(node)
        while stack:
            current = stack.pop()
            members.append(current)
            component_of[current] = index
            for neighbor in neighbors[current]:
                if neighbor in node_set and neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(members)

    edges_by_component: List[List[Tuple[Node, Node]]] = [[] for _ in components]
    for u, v in edge_list:
        if u in component_of:
            edges_by_component[component_of[u]].append((u, v))
    return list(zip(components, edges_by_component))
