"""Latency-constrained dataflow decisions (paper Section 4.3, future work).

Throughput-optimal decisions can leave rarely-read nodes fully on-demand,
giving them high read latencies (the paper's node ``g_r`` example in Section
2.2.1 and the discussion under "Query Latencies").  The paper defers
latency-*constrained* optimization to future work; this module implements
the natural formulation:

    minimize   Σ_X PUSH(v) + Σ_Y PULL(v)
    subject to estimated_read_latency(r) <= budget   for every reader r

where a reader's estimated latency is the cost of the pull computation its
decision implies — the summed ``L(fan_in)`` of every pull node in its
upstream closure (push nodes answer in O(1) and stop the recursion).

The solver reuses the min-cut machinery: readers violating the budget are
*forced push* (their whole upstream closure follows, via the cut's ∞ edges),
and the min-cut then re-optimizes everything else.  Forcing is iterated
until all constraints hold — each round only adds force-push readers, so it
terminates in at most |readers| rounds (in practice one or two).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.overlay import Decision, Overlay
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel
from repro.dataflow.mincut import DataflowStats, node_weights


def estimated_read_latency(
    overlay: Overlay, reader_handle: int, cost_model: CostModel
) -> float:
    """Cost of one read at ``reader_handle`` under the current decisions.

    A push reader answers from its PAO (one finalize, costed at 0); a pull
    reader pays ``L(fan_in)`` at itself plus, recursively, at every pull
    node it must evaluate.
    """
    total = 0.0
    stack = [reader_handle]
    seen: Set[int] = set()
    while stack:
        handle = stack.pop()
        if handle in seen:
            continue
        seen.add(handle)
        if overlay.decisions[handle] is Decision.PUSH:
            continue
        total += cost_model.pull_cost(max(1, overlay.fan_in(handle)))
        stack.extend(overlay.inputs[handle])
    return total


def read_latency_profile(
    overlay: Overlay, cost_model: Optional[CostModel] = None
) -> Dict[int, float]:
    """Estimated read latency for every reader under current decisions."""
    cost_model = cost_model or CostModel.constant_linear()
    return {
        handle: estimated_read_latency(overlay, handle, cost_model)
        for handle in overlay.reader_of.values()
    }


def decide_dataflow_with_latency_budget(
    overlay: Overlay,
    frequencies: FrequencyModel,
    latency_budget: float,
    cost_model: Optional[CostModel] = None,
    window_size: float = 1.0,
    max_rounds: Optional[int] = None,
) -> DataflowStats:
    """Throughput-optimal decisions subject to a per-reader latency cap.

    Runs the unconstrained min-cut first; readers whose estimated pull
    latency exceeds ``latency_budget`` are forced push and the cut re-runs.
    Returns the final round's statistics, with ``stats.pull_nodes`` /
    ``push_nodes`` reflecting the constrained solution.
    """
    if latency_budget < 0:
        raise ValueError("latency_budget must be non-negative")
    cost_model = cost_model or CostModel.constant_linear()
    forced: Set[int] = set()
    rounds = 0
    limit = max_rounds if max_rounds is not None else len(overlay.reader_of) + 1
    while True:
        stats = _decide(overlay, frequencies, cost_model, window_size, forced)
        rounds += 1
        violators = {
            handle
            for handle in overlay.reader_of.values()
            if handle not in forced
            and estimated_read_latency(overlay, handle, cost_model) > latency_budget
        }
        if not violators or rounds >= limit:
            return stats
        forced |= violators


def _decide(
    overlay: Overlay,
    frequencies: FrequencyModel,
    cost_model: CostModel,
    window_size: float,
    forced: Set[int],
) -> DataflowStats:
    """One min-cut round with an explicit force-push set."""
    from repro.dataflow.frequencies import compute_push_pull_frequencies
    from repro.dataflow.mincut import (
        assignment_cost,
        solve_dmp,
    )
    from repro.dataflow.pruning import connected_components, prune

    fh, fl = compute_push_pull_frequencies(overlay, frequencies)
    weights = node_weights(
        overlay, fh, fl, cost_model, window_size=window_size,
        force_push=forced or None,
    )
    edges = [
        (src, dst)
        for src, dst, _ in overlay.edges()
        if src in weights and dst in weights
    ]
    stats = DataflowStats(nodes_total=len(weights))
    pruned = prune(weights, edges)
    push = set(pruned.pushed)
    pull = set(pruned.pulled)
    components = connected_components(pruned.remaining_nodes, pruned.remaining_edges)
    stats.nodes_after_pruning = pruned.nodes_after
    stats.num_components = len(components)
    for members, component_edges in components:
        component_weights = {node: weights[node] for node in members}
        comp_push, comp_pull = solve_dmp(component_weights, component_edges)
        push |= comp_push
        pull |= comp_pull
    for handle in push:
        overlay.set_decision(handle, Decision.PUSH)
    for handle in pull:
        overlay.set_decision(handle, Decision.PULL)
    stats.push_nodes = len(push)
    stats.pull_nodes = len(pull)
    stats.total_cost = assignment_cost(
        overlay, fh, fl, cost_model, window_size=window_size
    )
    if not overlay.decisions_consistent():
        raise AssertionError("latency-constrained cut inconsistent (bug)")
    return stats
