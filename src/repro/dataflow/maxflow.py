"""Max-flow / min-cut, built from scratch (paper Section 4.4 substrate).

The paper solves the dataflow-decision problem with Ford–Fulkerson; we
implement **Dinic's algorithm** (same optimum, strictly better worst case)
plus a deliberately-simple **Edmonds–Karp** used by the test suite to
cross-validate Dinic on random networks.  Capacities may be floats or
``float('inf')`` (the overlay's original edges are uncut-table, Section
4.4's ``∞`` edges).
"""

from __future__ import annotations

import collections
from typing import Dict, List, Optional, Set, Tuple

INF = float("inf")


class FlowNetwork:
    """A directed flow network over nodes ``0 .. n-1``.

    Edges are stored in the standard paired representation: edge ``i`` and
    its reverse ``i ^ 1`` are adjacent in the arrays, so residual updates
    are O(1).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError("a flow network needs at least two nodes")
        self.num_nodes = num_nodes
        self._to: List[int] = []
        self._cap: List[float] = []
        self._adj: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add ``u -> v`` with the given capacity; returns the edge index."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise IndexError("edge endpoint out of range")
        edge_id = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._adj[u].append(edge_id)
        self._to.append(u)
        self._cap.append(0.0)
        self._adj[v].append(edge_id + 1)
        return edge_id

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------

    def _bfs_levels(self, source: int, sink: int) -> Optional[List[int]]:
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue = collections.deque([source])
        while queue:
            node = queue.popleft()
            for edge_id in self._adj[node]:
                target = self._to[edge_id]
                if self._cap[edge_id] > 0 and levels[target] < 0:
                    levels[target] = levels[node] + 1
                    queue.append(target)
        return levels if levels[sink] >= 0 else None

    def _dfs_block(
        self,
        node: int,
        sink: int,
        pushed: float,
        levels: List[int],
        iters: List[int],
    ) -> float:
        if node == sink:
            return pushed
        while iters[node] < len(self._adj[node]):
            edge_id = self._adj[node][iters[node]]
            target = self._to[edge_id]
            if self._cap[edge_id] > 0 and levels[target] == levels[node] + 1:
                flow = self._dfs_block(
                    target, sink, min(pushed, self._cap[edge_id]), levels, iters
                )
                if flow > 0:
                    self._cap[edge_id] -= flow
                    self._cap[edge_id ^ 1] += flow
                    return flow
            iters[node] += 1
        return 0.0

    def max_flow(self, source: int, sink: int) -> float:
        """Run Dinic's algorithm; afterwards the network holds the residual."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels is None:
                return total
            iters = [0] * self.num_nodes
            while True:
                flow = self._dfs_block(source, sink, INF, levels, iters)
                if flow <= 0:
                    break
                total += flow

    def residual_reachable(self, source: int) -> Set[int]:
        """Nodes reachable from ``source`` in the residual network.

        After :meth:`max_flow`, this is the source side of a minimum cut —
        exactly the set the DMP reduction maps to pull decisions.
        """
        seen = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            for edge_id in self._adj[node]:
                target = self._to[edge_id]
                if self._cap[edge_id] > 0 and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen


def edmonds_karp(
    num_nodes: int,
    edges: List[Tuple[int, int, float]],
    source: int,
    sink: int,
) -> float:
    """Reference max-flow (BFS augmenting paths) for cross-validation."""
    capacity: Dict[Tuple[int, int], float] = collections.defaultdict(float)
    adjacency: Dict[int, Set[int]] = collections.defaultdict(set)
    for u, v, cap in edges:
        capacity[(u, v)] += cap
        adjacency[u].add(v)
        adjacency[v].add(u)

    total = 0.0
    while True:
        parents: Dict[int, int] = {source: source}
        queue = collections.deque([source])
        while queue and sink not in parents:
            node = queue.popleft()
            for target in adjacency[node]:
                if target not in parents and capacity[(node, target)] > 0:
                    parents[target] = node
                    queue.append(target)
        if sink not in parents:
            return total
        bottleneck = INF
        node = sink
        while node != source:
            parent = parents[node]
            bottleneck = min(bottleneck, capacity[(parent, node)])
            node = parent
        node = sink
        while node != source:
            parent = parents[node]
            capacity[(parent, node)] -= bottleneck
            capacity[(node, parent)] += bottleneck
            node = parent
        total += bottleneck
