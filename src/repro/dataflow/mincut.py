"""Optimal dataflow decisions via the DMP → s-t min-cut reduction (§4.3–4.5).

The *difference-maximizing partition* (DMP) problem: given a DAG with node
weights ``w(v)`` (possibly negative), find a partition ``(X, Y)`` with no
edge from ``Y`` to ``X`` maximizing ``Σ_X w − Σ_Y w``.  The dataflow problem
reduces to DMP with ``w(v) = PULL(v) − PUSH(v)``: ``X`` becomes the push
set, ``Y`` the pull set, and the partition constraint is exactly decision
consistency (everything upstream of a push node is push).

The reduction to min-cut (Theorem 4.1): augment with source ``s`` and sink
``t``; ``s → v`` with capacity ``−w(v)`` for pull-leaning nodes, ``v → t``
with capacity ``w(v)`` for push-leaning nodes, and ``∞`` on the original
edges.  After max-flow, nodes residual-reachable from ``s`` form ``Y``.

:func:`decide_dataflow` wires the whole Section-4 pipeline together:
frequencies → weights → P1/P2 pruning → per-component max-flow →
decision annotation, returning the statistics Figure 12 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.overlay import Decision, NodeKind, Overlay
from repro.dataflow.costs import CostModel
from repro.dataflow.frequencies import FrequencyModel, compute_push_pull_frequencies
from repro.dataflow.maxflow import INF, FlowNetwork
from repro.dataflow.pruning import connected_components, prune

Node = Hashable


def solve_dmp(
    weights: Dict[Node, float], edges: Iterable[Tuple[Node, Node]]
) -> Tuple[Set[Node], Set[Node]]:
    """Solve one DMP instance exactly; returns ``(X, Y)`` = (push, pull).

    Implements the Theorem 4.1 construction directly (no pruning) — callers
    wanting scale should go through :func:`decide_dataflow`, which prunes
    first and calls this per component.
    """
    nodes = list(weights)
    index = {node: i for i, node in enumerate(nodes)}
    edge_list = [(u, v) for u, v in edges]
    network = FlowNetwork(len(nodes) + 2)
    source = len(nodes)
    sink = len(nodes) + 1
    for node, weight in weights.items():
        if weight < 0:
            network.add_edge(source, index[node], -weight)
        elif weight > 0:
            network.add_edge(index[node], sink, weight)
    for u, v in edge_list:
        network.add_edge(index[u], index[v], INF)
    network.max_flow(source, sink)
    reachable = network.residual_reachable(source)
    pull = {node for node in nodes if index[node] in reachable}
    push = {node for node in nodes if node not in pull}
    return push, pull


def partition_value(
    weights: Dict[Node, float], push: Set[Node], pull: Set[Node]
) -> float:
    """The DMP objective ``Σ_X w − Σ_Y w`` of a partition (for tests)."""
    return sum(weights[n] for n in push) - sum(weights[n] for n in pull)


@dataclass
class DataflowStats:
    """Telemetry from one decision run (Figure 12's series)."""

    nodes_total: int = 0
    graph_nodes_before: int = 0
    virtual_nodes_before: int = 0
    nodes_after_pruning: int = 0
    graph_nodes_after: int = 0
    virtual_nodes_after: int = 0
    num_components: int = 0
    largest_component: int = 0
    push_nodes: int = 0
    pull_nodes: int = 0
    total_cost: float = 0.0

    @property
    def pruned_fraction(self) -> float:
        """Fraction of decision nodes resolved by P1/P2 (Figure 12)."""
        if self.nodes_total == 0:
            return 0.0
        return 1.0 - self.nodes_after_pruning / self.nodes_total


def node_weights(
    overlay: Overlay,
    fh: List[float],
    fl: List[float],
    cost_model: CostModel,
    window_size: float = 1.0,
    force_push: Optional[Set[int]] = None,
) -> Dict[int, float]:
    """``w(v) = PULL(v) − PUSH(v)`` for every *decidable* (non-writer) node.

    Writers are excluded: they are always push (Section 2.2.1).  ``force_push``
    handles continuous-mode readers, which get an effectively infinite
    push benefit so the cut can never place them in the pull side.
    """
    weights: Dict[int, float] = {}
    for handle in range(overlay.num_nodes):
        kind = overlay.kinds[handle]
        if kind is NodeKind.WRITER:
            continue
        fan_in = max(1, overlay.fan_in(handle))
        degree = fan_in if kind is not NodeKind.WRITER else max(1, int(window_size))
        push_cost = fh[handle] * cost_model.push_cost(degree)
        pull_cost = fl[handle] * cost_model.pull_cost(degree)
        weights[handle] = pull_cost - push_cost
    if force_push:
        bound = sum(abs(w) for w in weights.values()) + 1.0
        for handle in force_push:
            if handle in weights:
                weights[handle] = bound
    return weights


def assignment_cost(
    overlay: Overlay,
    fh: List[float],
    fl: List[float],
    cost_model: CostModel,
    window_size: float = 1.0,
) -> float:
    """Total expected cost ``Σ_X PUSH + Σ_Y PULL`` of the current decisions.

    Writers contribute their (mandatory) push cost with the window size as
    their effective fan-in, following Section 4.2.
    """
    total = 0.0
    for handle in range(overlay.num_nodes):
        kind = overlay.kinds[handle]
        if kind is NodeKind.WRITER:
            total += fh[handle] * cost_model.push_cost(max(1, int(window_size)))
            continue
        degree = max(1, overlay.fan_in(handle))
        if overlay.decisions[handle] is Decision.PUSH:
            total += fh[handle] * cost_model.push_cost(degree)
        else:
            total += fl[handle] * cost_model.pull_cost(degree)
    return total


def decide_dataflow(
    overlay: Overlay,
    frequencies: FrequencyModel,
    cost_model: Optional[CostModel] = None,
    window_size: float = 1.0,
    use_pruning: bool = True,
    force_push_readers: bool = False,
) -> DataflowStats:
    """Annotate the overlay with optimal push/pull decisions (Section 4).

    Returns the run's statistics.  ``force_push_readers`` implements
    continuous-query mode.  Setting ``use_pruning=False`` runs max-flow on
    the full decision graph (tests verify pruning changes nothing).
    """
    if cost_model is None:
        cost_model = CostModel.constant_linear()
    fh, fl = compute_push_pull_frequencies(overlay, frequencies)
    force = set(overlay.reader_of.values()) if force_push_readers else None
    weights = node_weights(
        overlay, fh, fl, cost_model, window_size=window_size, force_push=force
    )
    decision_edges = [
        (src, dst)
        for src, dst, _ in overlay.edges()
        if src in weights and dst in weights
    ]

    stats = DataflowStats(nodes_total=len(weights))
    stats.graph_nodes_before = sum(
        1 for h in weights if overlay.kinds[h] is NodeKind.READER
    )
    stats.virtual_nodes_before = stats.nodes_total - stats.graph_nodes_before

    push: Set[int] = set()
    pull: Set[int] = set()
    if use_pruning:
        pruned = prune(weights, decision_edges)
        push |= pruned.pushed
        pull |= pruned.pulled
        stats.nodes_after_pruning = pruned.nodes_after
        stats.graph_nodes_after = sum(
            1 for h in pruned.remaining_nodes if overlay.kinds[h] is NodeKind.READER
        )
        stats.virtual_nodes_after = pruned.nodes_after - stats.graph_nodes_after
        components = connected_components(
            pruned.remaining_nodes, pruned.remaining_edges
        )
    else:
        stats.nodes_after_pruning = len(weights)
        components = connected_components(weights, decision_edges)

    stats.num_components = len(components)
    stats.largest_component = max((len(c[0]) for c in components), default=0)
    for members, edges in components:
        component_weights = {node: weights[node] for node in members}
        comp_push, comp_pull = solve_dmp(component_weights, edges)
        push |= comp_push
        pull |= comp_pull

    for handle in push:
        overlay.set_decision(handle, Decision.PUSH)
    for handle in pull:
        overlay.set_decision(handle, Decision.PULL)
    stats.push_nodes = len(push)
    stats.pull_nodes = len(pull)
    stats.total_cost = assignment_cost(
        overlay, fh, fl, cost_model, window_size=window_size
    )
    if not overlay.decisions_consistent():
        raise AssertionError("min-cut produced inconsistent decisions (bug)")
    return stats
