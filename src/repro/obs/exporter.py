"""Prometheus text exposition for the metrics snapshot API.

:class:`MetricsExporter` renders the structured snapshot returned by
``EAGrServer.metrics(include_buckets=True)`` (or any nested dict of the
same shape) as Prometheus text format (version 0.0.4):

* plain numbers become untyped samples named by their flattened path
  (``eagr_server_writes_sent``);
* histogram summaries (dicts with ``buckets``/``sum``/``count``) become
  the canonical ``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet with
  cumulative buckets (boundaries in **seconds**, converted from the
  registry's µs buckets);
* sections keyed by shard id (``shards``, ``rings``, ``shard_io``)
  become a ``shard="i"`` label instead of a path component;
* non-numeric leaves (strings, the slow-op list) are skipped — they
  belong to the structured snapshot, not the exposition.

:func:`serve_metrics_http` mounts ``render()`` on a stdlib
``ThreadingHTTPServer`` daemon thread (``GET /metrics``) for anything
that wants to scrape over HTTP; it is optional and never started unless
asked for.
"""

from __future__ import annotations

import re
import threading

from .registry import bucket_bounds_us

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
_SHARD_KEYED = {"shards", "rings", "shard_io"}


def _clean(part):
    return _NAME_OK.sub("_", str(part)).strip("_")


def _is_histogram_summary(value):
    return (
        isinstance(value, dict)
        and "buckets" in value
        and "sum" in value
        and "count" in value
    )


def _is_quantile_summary(value):
    return isinstance(value, dict) and "p50" in value and "count" in value


class MetricsExporter:
    """Render a metrics snapshot source as Prometheus text exposition."""

    def __init__(self, source, prefix="eagr"):
        """``source``: a zero-arg callable returning the snapshot dict, or
        an object with a ``metrics(include_buckets=True)`` method (an
        ``EAGrServer``), or a plain snapshot dict."""
        self._source = source
        self.prefix = _clean(prefix)

    def _snapshot(self):
        src = self._source
        if isinstance(src, dict):
            return src
        metrics = getattr(src, "metrics", None)
        if callable(metrics) and not callable(src):
            return metrics(include_buckets=True)
        return src()

    def render(self):
        lines = []
        self._walk(self._snapshot(), [self.prefix], "", lines)
        return "\n".join(lines) + "\n"

    # -- walker -------------------------------------------------------
    def _walk(self, node, path, labels, lines):
        if _is_histogram_summary(node):
            self._render_histogram(node, path, labels, lines)
            return
        if _is_quantile_summary(node):
            name = "_".join(path)
            for q_key, q in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                q_label = 'quantile="%s"' % q
                lines.append(
                    f"{name}{_merge(labels, q_label)} {_fmt(node[q_key])}"
                )
            lines.append(f"{name}_sum{_brace(labels)} {_fmt(node.get('sum', 0.0))}")
            lines.append(f"{name}_count{_brace(labels)} {_fmt(node['count'])}")
            return
        if isinstance(node, dict):
            for key, value in node.items():
                # Shard ids become a label, not a path component — but only
                # the id keys themselves; metric dicts nested under a shard
                # (histogram summaries) keep their name in the path.
                if (
                    path[-1] in _SHARD_KEYED
                    and str(key).isdigit()
                    and not isinstance(value, (int, float, bool))
                ):
                    child_labels = _merge_raw(labels, f'shard="{_clean(key)}"')
                    self._walk(value, path, child_labels, lines)
                else:
                    self._walk(value, path + [_clean(key)], labels, lines)
            return
        if isinstance(node, bool):
            lines.append(f"{'_'.join(path)}{_brace(labels)} {1 if node else 0}")
            return
        if isinstance(node, (int, float)):
            lines.append(f"{'_'.join(path)}{_brace(labels)} {_fmt(node)}")
            return
        # strings, lists (slow-op events), None: structured-only leaves

    def _render_histogram(self, summary, path, labels, lines):
        name = "_".join(path)
        lines.append(f"# TYPE {name} histogram")
        bounds = bucket_bounds_us()
        cum = 0.0
        for count, bound_us in zip(summary["buckets"], bounds):
            cum += count
            le = "+Inf" if bound_us == float("inf") else _fmt(bound_us / 1e6)
            le_label = 'le="%s"' % le
            lines.append(f"{name}_bucket{_merge(labels, le_label)} {_fmt(cum)}")
        lines.append(f"{name}_sum{_brace(labels)} {_fmt(summary['sum'])}")
        lines.append(f"{name}_count{_brace(labels)} {_fmt(summary['count'])}")


def _fmt(v):
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _brace(labels):
    return f"{{{labels}}}" if labels else ""


def _merge_raw(labels, extra):
    return f"{labels},{extra}" if labels else extra


def _merge(labels, extra):
    return _brace(_merge_raw(labels, extra))


def serve_metrics_http(source, host="127.0.0.1", port=0, prefix="eagr"):
    """Serve ``GET /metrics`` from a daemon thread; returns the endpoint.

    The returned object has ``.port`` (useful with ``port=0``) and
    ``.shutdown()``.  Uses only the stdlib ``http.server``; nothing is
    imported until this is called, and nothing keeps the process alive.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    exporter = MetricsExporter(source, prefix=prefix)

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - stdlib API
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_response(404)
                self.end_headers()
                return
            body = exporter.render().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # keep scrapes out of stderr
            pass

    httpd = ThreadingHTTPServer((host, port), _Handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True, name="eagr-metrics-http")
    thread.start()

    class _Endpoint:
        def __init__(self):
            self.port = httpd.server_address[1]
            self.host = httpd.server_address[0]

        def shutdown(self):
            httpd.shutdown()
            httpd.server_close()

    return _Endpoint()
