"""Fixed shard-side metric schema: worker and scraper must agree on slots.

A shard worker publishes its registry's flat value array into its
:class:`~repro.obs.slab.MetricsSlab`; the front-end decodes the scrape
by loading those values into a registry of its own.  Both sides build
their registry with :func:`declare_shard_metrics`, which registers the
same metrics in the same order — the order **is** the wire format, so
changes here are wire-format changes: append new metrics at the end and
never reorder, or front-end and workers from the same build disagree on
slot layout.
"""

from __future__ import annotations

from .registry import KIND_COUNTER, KIND_GAUGE, KIND_HISTOGRAM

#: (name, kind) in slot order.  Appended-to, never reordered.
SHARD_METRICS = (
    ("shard_apply_seconds", KIND_HISTOGRAM),
    ("shard_recompute_seconds", KIND_HISTOGRAM),
    ("shard_batches_applied", KIND_COUNTER),
    ("shard_writes_applied", KIND_COUNTER),
    ("shard_notices_emitted", KIND_COUNTER),
    ("shard_groups_merged", KIND_COUNTER),
    ("shard_parks", KIND_COUNTER),
    ("shard_doorbell_wakeups", KIND_COUNTER),
    ("shard_engine_write_seconds", KIND_GAUGE),
    ("shard_engine_read_seconds", KIND_GAUGE),
    # Windowed load gauges (refreshed by the host when scraped/published
    # at least 50 ms apart): the rebalance policy's skew inputs.
    ("shard_busy_fraction", KIND_GAUGE),
    ("shard_applied_eps", KIND_GAUGE),
)

#: (name, kind) of the network gateway's connection/stream metrics.
#: Declared on the *front-end* registry (the gateway lives in the same
#: process as the EAGrServer it fronts), so they surface in
#: ``server.metrics()["server"]`` and the Prometheus exposition without
#: any new scrape path.  Same append-only discipline as SHARD_METRICS.
GATEWAY_METRICS = (
    ("gw_connections_opened", KIND_COUNTER),
    ("gw_connections_active", KIND_GAUGE),
    ("gw_streams_active", KIND_GAUGE),
    ("gw_frames_in", KIND_COUNTER),
    ("gw_frames_out", KIND_COUNTER),
    ("gw_bytes_in", KIND_COUNTER),
    ("gw_bytes_out", KIND_COUNTER),
    ("gw_notes_sent", KIND_COUNTER),
    ("gw_stream_pauses", KIND_COUNTER),
    ("gw_stream_resumes", KIND_COUNTER),
    ("gw_resume_gaps", KIND_COUNTER),
    ("gw_protocol_errors", KIND_COUNTER),
    ("gw_send_seconds", KIND_HISTOGRAM),
)

_REGISTRARS = {
    KIND_COUNTER: lambda reg, name: reg.counter(name),
    KIND_GAUGE: lambda reg, name: reg.gauge(name),
    KIND_HISTOGRAM: lambda reg, name: reg.histogram(name),
}


def declare_shard_metrics(registry):
    """Register the shard schema on ``registry``; return ``{name: metric}``."""
    out = {}
    for name, kind in SHARD_METRICS:
        out[name] = _REGISTRARS[kind](registry, name)
    return out


def declare_gateway_metrics(registry):
    """Register the gateway schema on ``registry``; return ``{name: metric}``.

    Idempotent per registry (re-registration returns the same metric
    objects), so a second :class:`~repro.serve.gateway.GatewayServer`
    attached to the same front-end shares the counters.
    """
    out = {}
    for name, kind in GATEWAY_METRICS:
        out[name] = _REGISTRARS[kind](registry, name)
    return out
