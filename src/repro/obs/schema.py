"""Fixed shard-side metric schema: worker and scraper must agree on slots.

A shard worker publishes its registry's flat value array into its
:class:`~repro.obs.slab.MetricsSlab`; the front-end decodes the scrape
by loading those values into a registry of its own.  Both sides build
their registry with :func:`declare_shard_metrics`, which registers the
same metrics in the same order — the order **is** the wire format, so
changes here are wire-format changes: append new metrics at the end and
never reorder, or front-end and workers from the same build disagree on
slot layout.
"""

from __future__ import annotations

from .registry import KIND_COUNTER, KIND_GAUGE, KIND_HISTOGRAM

#: (name, kind) in slot order.  Appended-to, never reordered.
SHARD_METRICS = (
    ("shard_apply_seconds", KIND_HISTOGRAM),
    ("shard_recompute_seconds", KIND_HISTOGRAM),
    ("shard_batches_applied", KIND_COUNTER),
    ("shard_writes_applied", KIND_COUNTER),
    ("shard_notices_emitted", KIND_COUNTER),
    ("shard_groups_merged", KIND_COUNTER),
    ("shard_parks", KIND_COUNTER),
    ("shard_doorbell_wakeups", KIND_COUNTER),
    ("shard_engine_write_seconds", KIND_GAUGE),
    ("shard_engine_read_seconds", KIND_GAUGE),
)

_REGISTRARS = {
    KIND_COUNTER: lambda reg, name: reg.counter(name),
    KIND_GAUGE: lambda reg, name: reg.gauge(name),
    KIND_HISTOGRAM: lambda reg, name: reg.histogram(name),
}


def declare_shard_metrics(registry):
    """Register the shard schema on ``registry``; return ``{name: metric}``."""
    out = {}
    for name, kind in SHARD_METRICS:
        out[name] = _REGISTRARS[kind](registry, name)
    return out
