"""Observability: low-overhead metrics registry + shared-memory scrape plane.

The serving tier (``repro.serve``) is a multi-process system: a front-end
routes write batches to shard workers over shared-memory rings, shard
workers apply them against their own engines, and notifications flow
back.  Asking a worker "how are you doing?" with a control message would
perturb exactly the thing being measured, so this package keeps the
measurement plane on the same zero-copy substrate as the data plane:

* :class:`~repro.obs.registry.MetricsRegistry` — a slot-backed registry
  of counters, gauges and log-bucketed latency histograms.  All metric
  values live in one flat float64 array (numpy when available, a plain
  list on the fallback path), so an increment is one indexed add and a
  snapshot is one copy.  A disabled registry hands out shared no-op
  metrics, making the metrics-off cost a single attribute load.
* :class:`~repro.obs.slab.MetricsSlab` — a named shared-memory segment
  (same ``multiprocessing.shared_memory`` + seqlock discipline as
  ``SharedColumnarStore``/``ShmRing``) into which each shard worker
  publishes its registry's value array; the front-end scrapes every
  shard with zero IPC and no control round-trip.
* :func:`~repro.obs.schema.declare_shard_metrics` — the fixed, ordered
  shard-side schema, so worker and scraper agree on slot layout.
* :class:`~repro.obs.exporter.MetricsExporter` — Prometheus text
  exposition (``render()``) and an optional stdlib-http endpoint.
* :class:`~repro.obs.registry.SlowOpLog` — a threshold-gated bounded
  ring of structured slow-operation events.

Metrics default **on** (they are cheap enough to leave on in
production — ``benchmarks/bench_obs_overhead.py`` proves the overhead);
``EAGR_METRICS=0`` or ``EAGrServer(metrics=False)`` turns them off.
"""

from .registry import (
    HIST_BUCKETS,
    MetricsRegistry,
    SlowOpLog,
    bucket_bounds_us,
    bucket_index,
    percentile_from_buckets,
)
from .slab import MetricsSlab
from .schema import (
    GATEWAY_METRICS,
    SHARD_METRICS,
    declare_gateway_metrics,
    declare_shard_metrics,
)
from .exporter import MetricsExporter, serve_metrics_http

__all__ = [
    "HIST_BUCKETS",
    "MetricsRegistry",
    "MetricsSlab",
    "MetricsExporter",
    "SlowOpLog",
    "GATEWAY_METRICS",
    "SHARD_METRICS",
    "bucket_bounds_us",
    "bucket_index",
    "declare_gateway_metrics",
    "declare_shard_metrics",
    "percentile_from_buckets",
    "serve_metrics_http",
]
