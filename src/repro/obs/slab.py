"""Shared-memory metrics slab: seqlock-published, scraped with zero IPC.

Each shard worker owns a :class:`MetricsSlab` — a small named
``multiprocessing.shared_memory`` segment carrying the worker's flat
metric value array (see ``registry.py``).  The segment is created and
later unlinked by the **front-end** (the same exactly-once-by-name
discipline as the ingress rings and value stores — workers may die by
``kill -9`` and must never be the party responsible for cleanup); the
worker attaches, and after applying each batch group bulk-publishes its
registry values under a seqlock.  The front-end scrapes every shard by
reading the slabs directly: no control message, no queue round-trip, no
perturbation of the worker being observed.

Layout (little-endian)::

    [magic i64][n_slots i64][seq i64][reserved i64][values f64 * n_slots]

The seqlock follows ``SharedColumnarStore``: the publisher bumps ``seq``
to odd, writes the values, bumps it to even.  A scraper samples ``seq``,
copies, re-samples; odd or changed means a torn read and it retries (a
handful of attempts, then returns the last copy — metrics are
monotone-ish and a rare torn scrape is self-correcting on the next
pass).
"""

from __future__ import annotations

import struct

from ..core.statestore import attach_segment, create_segment, unlink_segment

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

_MAGIC = 0x4D455452  # "METR"
_HEADER = struct.Struct("<qqqq")
_Q = struct.Struct("<q")
_SEQ_OFF = 16  # byte offset of the seq slot
_DATA_OFF = _HEADER.size
_SCRAPE_ATTEMPTS = 8


class MetricsSlab:
    """One shard's metrics segment; create on the front-end, attach in the worker."""

    def __init__(self, shm, n_slots, owner):
        self._shm = shm
        self.n_slots = int(n_slots)
        self._owner = bool(owner)
        self._closed = False
        self._fmt = struct.Struct(f"<{self.n_slots}d")

    # -- lifecycle ----------------------------------------------------
    @classmethod
    def create(cls, name, n_slots):
        """Front-end: create (or adopt a stale same-name) segment."""
        size = _DATA_OFF + int(n_slots) * 8
        shm = create_segment(name, size)
        _HEADER.pack_into(shm.buf, 0, _MAGIC, int(n_slots), 0, 0)
        shm.buf[_DATA_OFF:_DATA_OFF + int(n_slots) * 8] = b"\x00" * (int(n_slots) * 8)
        return cls(shm, n_slots, owner=True)

    @classmethod
    def attach(cls, name, n_slots=None):
        """Worker (or out-of-process scraper): attach to an existing slab."""
        shm = attach_segment(name)
        magic, declared, _seq, _res = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise ValueError(f"segment {name!r} is not a metrics slab")
        if n_slots is not None and int(n_slots) != declared:
            shm.close()
            raise ValueError(
                f"metrics slab {name!r} declares {declared} slots, caller expects {n_slots}"
            )
        return cls(shm, declared, owner=False)

    @property
    def name(self):
        return self._shm.name

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self):
        unlink_segment(self._shm.name)

    # -- seqlock ------------------------------------------------------
    def _seq(self):
        return _Q.unpack_from(self._shm.buf, _SEQ_OFF)[0]

    def _set_seq(self, v):
        _Q.pack_into(self._shm.buf, _SEQ_OFF, v)

    def publish(self, values):
        """Publisher side: bulk-write the flat value array under the seqlock."""
        if self._closed:
            return
        seq = self._seq()
        self._set_seq(seq + 1)  # odd: write in progress
        if _np is not None:
            view = _np.frombuffer(
                self._shm.buf, dtype=_np.float64, count=self.n_slots, offset=_DATA_OFF
            )
            view[:] = values
        else:
            self._fmt.pack_into(self._shm.buf, _DATA_OFF, *values)
        self._set_seq(seq + 2)  # even: stable

    def scrape(self):
        """Reader side: seqlock-consistent copy of the value array.

        Returns a list (fallback) or numpy array.  After
        ``_SCRAPE_ATTEMPTS`` torn reads the last copy is returned anyway
        — a metrics scrape must never wedge behind a busy publisher.
        """
        if self._closed:
            return [0.0] * self.n_slots
        out = None
        for _ in range(_SCRAPE_ATTEMPTS):
            s0 = self._seq()
            if s0 & 1:
                continue
            out = self._copy_values()
            if self._seq() == s0:
                return out
        return out if out is not None else self._copy_values()

    def _copy_values(self):
        if _np is not None:
            view = _np.frombuffer(
                self._shm.buf, dtype=_np.float64, count=self.n_slots, offset=_DATA_OFF
            )
            return view.copy()
        return list(self._fmt.unpack_from(self._shm.buf, _DATA_OFF))
