"""Slot-backed metrics registry: counters, gauges, log-bucket histograms.

Every metric registered with a :class:`MetricsRegistry` is assigned a
contiguous range of slots in one flat float64 value array (a numpy array
when numpy is importable, a plain Python list otherwise — both paths
share the exact same slot layout, which the parity tests pin).  That
flat layout is the whole trick:

* an increment is one indexed ``+=`` — no dict lookup on the hot path,
  because call sites hold the metric object, which caches its offset;
* a snapshot is one array copy;
* publishing a shard's metrics into a shared-memory slab is one bulk
  assign, and scraping it back is one bulk read (``slab.py``);
* merging shards is elementwise addition of same-schema arrays.

Histograms are fixed-bucket and log-scaled in **microseconds**: bucket 0
counts observations below 1 µs, bucket *i* (1 ≤ i < 47) counts
``[2**(i-1), 2**i)`` µs, and the last bucket is the overflow catch-all
(≥ ~19 hours — nothing a serving path should ever see).  Bucketing an
observation is ``int(us).bit_length()`` — no log calls, no search.
Quantiles are recovered by a cumulative walk with linear interpolation
inside the landing bucket; at 2x-wide buckets the worst-case quantile
error is a factor of 2, which is exactly the resolution a latency SLO
needs (is p99 ~1 ms or ~30 ms?) at 49 slots per histogram.

A registry constructed with ``enabled=False`` hands out process-wide
no-op metric singletons, so the metrics-off cost of an instrumented call
site is one method call that immediately returns — cheap enough that
instrumentation never needs an ``if`` guard of its own.

Metric updates are not locked.  CPython's eval loop makes the indexed
``+=`` races between threads lose at most an update under contention,
which is an acceptable drift for observability counters; everything
whose exactness the serving tier *relies on* (stamps, watermarks, WAL
sequence numbers) stays outside this registry.
"""

from __future__ import annotations

from collections import deque
from time import monotonic

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: Number of count buckets per histogram (excluding the sum slot).
HIST_BUCKETS = 48
#: Slots a histogram occupies: one running sum (seconds) + the buckets.
_HIST_SLOTS = 1 + HIST_BUCKETS
#: Highest finite bucket index; observations >= 2**(HIST_BUCKETS-2) µs
#: land in the overflow bucket HIST_BUCKETS-1.
_OVERFLOW = HIST_BUCKETS - 1

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"

_WIDTHS = {KIND_COUNTER: 1, KIND_GAUGE: 1, KIND_HISTOGRAM: _HIST_SLOTS}


def bucket_index(seconds):
    """Map a duration in seconds to its histogram bucket index."""
    us = int(seconds * 1e6)
    if us < 1:
        return 0
    idx = us.bit_length()
    return idx if idx < _OVERFLOW else _OVERFLOW


def bucket_bounds_us():
    """Upper bounds (exclusive) of each bucket, in µs; last is ``inf``.

    Bucket 0 is ``[0, 1)``, bucket i is ``[2**(i-1), 2**i)`` and the
    overflow bucket has an infinite upper bound.
    """
    bounds = [1.0] + [float(2 ** i) for i in range(1, _OVERFLOW)]
    bounds.append(float("inf"))
    return bounds


def percentile_from_buckets(counts, q):
    """Recover the q-quantile (0..1) in **seconds** from bucket counts.

    Walks the cumulative distribution and linearly interpolates inside
    the landing bucket.  Empty histograms report 0.0 (finite — callers
    asserting "p99 is present and finite" must not trip on an idle
    server), and observations in the overflow bucket report the last
    finite boundary.
    """
    total = 0.0
    for c in counts:
        total += c
    if total <= 0.0:
        return 0.0
    rank = q * total
    bounds = bucket_bounds_us()
    cum = 0.0
    for i, c in enumerate(counts):
        if c <= 0.0:
            continue
        if cum + c >= rank:
            lo = 0.0 if i == 0 else float(2 ** (i - 1))
            hi = bounds[i]
            if hi == float("inf"):  # overflow bucket: clamp to its floor
                return lo / 1e6
            frac = (rank - cum) / c
            return (lo + (hi - lo) * frac) / 1e6
        cum += c
    last = len(counts) - 1
    return (float(2 ** (last - 1)) if last > 0 else 1.0) / 1e6


class Counter:
    """Monotonically increasing float64 slot."""

    __slots__ = ("_reg", "_off", "name", "enabled")

    def __init__(self, reg, off, name):
        self._reg = reg
        self._off = off
        self.name = name
        self.enabled = True

    def inc(self, n=1.0):
        self._reg._values[self._off] += n

    @property
    def value(self):
        return float(self._reg._values[self._off])


class Gauge:
    """Last-write-wins float64 slot."""

    __slots__ = ("_reg", "_off", "name", "enabled")

    def __init__(self, reg, off, name):
        self._reg = reg
        self._off = off
        self.name = name
        self.enabled = True

    def set(self, v):
        self._reg._values[self._off] = float(v)

    def add(self, n=1.0):
        self._reg._values[self._off] += n

    @property
    def value(self):
        return float(self._reg._values[self._off])


class Histogram:
    """Log-bucketed latency histogram over ``_HIST_SLOTS`` slots.

    Slot layout (relative to the metric offset): ``[sum_seconds,
    bucket_0, ..., bucket_47]``.  ``count`` is the bucket total — there
    is deliberately no separate count slot a torn scrape could leave
    inconsistent with the buckets.
    """

    __slots__ = ("_reg", "_off", "name", "enabled")

    def __init__(self, reg, off, name):
        self._reg = reg
        self._off = off
        self.name = name
        self.enabled = True

    def observe(self, seconds):
        values = self._reg._values
        off = self._off
        values[off] += seconds
        values[off + 1 + bucket_index(seconds)] += 1.0

    @property
    def sum(self):
        return float(self._reg._values[self._off])

    @property
    def count(self):
        return float(sum(self.counts()))

    def counts(self):
        off = self._off
        return [float(v) for v in self._reg._values[off + 1:off + 1 + HIST_BUCKETS]]

    def percentile(self, q):
        return percentile_from_buckets(self.counts(), q)

    def summary(self):
        counts = self.counts()
        return {
            "count": float(sum(counts)),
            "sum": self.sum,
            "p50": percentile_from_buckets(counts, 0.50),
            "p95": percentile_from_buckets(counts, 0.95),
            "p99": percentile_from_buckets(counts, 0.99),
        }


class _NullMetric:
    """Shared no-op metric handed out by disabled registries."""

    __slots__ = ()
    enabled = False
    name = "<disabled>"
    sum = 0.0
    count = 0.0
    value = 0.0

    def inc(self, n=1.0):
        pass

    def set(self, v):
        pass

    def add(self, n=1.0):
        pass

    def observe(self, seconds):
        pass

    def counts(self):
        return [0.0] * HIST_BUCKETS

    def percentile(self, q):
        return 0.0

    def summary(self):
        return {"count": 0.0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


_NULL = _NullMetric()


class MetricsRegistry:
    """Ordered registry of metrics over one flat float64 value array.

    Registration order defines slot layout, so two registries that make
    the same ``counter``/``gauge``/``histogram`` calls in the same order
    are layout-compatible: one can :meth:`load_values` an array snapshot
    taken from the other (this is how the front-end decodes a shard's
    shared-memory slab — see ``schema.declare_shard_metrics``).
    """

    def __init__(self, enabled=True):
        self.enabled = bool(enabled)
        self._metrics = {}
        self._order = []  # [(name, kind, offset)] in registration order
        self._n_slots = 0
        if _np is not None:
            self._values = _np.zeros(0, dtype=_np.float64)
        else:
            self._values = []

    # -- registration -------------------------------------------------
    def _register(self, name, kind, cls):
        metric = self._metrics.get(name)
        if metric is not None:
            if not self.enabled:
                return metric
            if self._kind_of(name) != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {self._kind_of(name)}"
                )
            return metric
        if not self.enabled:
            self._metrics[name] = _NULL
            self._order.append((name, kind, self._n_slots))
            self._n_slots += _WIDTHS[kind]
            return _NULL
        off = self._n_slots
        width = _WIDTHS[kind]
        self._n_slots += width
        if _np is not None:
            grown = _np.zeros(self._n_slots, dtype=_np.float64)
            grown[: len(self._values)] = self._values
            self._values = grown
        else:
            self._values.extend([0.0] * width)
        metric = cls(self, off, name)
        self._metrics[name] = metric
        self._order.append((name, kind, off))
        return metric

    def _kind_of(self, name):
        for n, kind, _off in self._order:
            if n == name:
                return kind
        return None

    def counter(self, name):
        return self._register(name, KIND_COUNTER, Counter)

    def gauge(self, name):
        return self._register(name, KIND_GAUGE, Gauge)

    def histogram(self, name):
        return self._register(name, KIND_HISTOGRAM, Histogram)

    # -- bulk value plumbing (slab publish/scrape, shard merge) -------
    @property
    def n_slots(self):
        return self._n_slots

    def values_snapshot(self):
        """Copy of the flat value array (list on the fallback path)."""
        if _np is not None and self.enabled:
            return self._values.copy()
        return list(self._values)

    def load_values(self, values):
        """Overwrite the backing array from a scraped snapshot."""
        if not self.enabled:
            return
        if len(values) != self._n_slots:
            raise ValueError(
                f"snapshot has {len(values)} slots, registry declares {self._n_slots}"
            )
        if _np is not None:
            self._values = _np.asarray(values, dtype=_np.float64).copy()
        else:
            self._values = [float(v) for v in values]

    def merge_values(self, values):
        """Elementwise-add a same-schema snapshot into this registry.

        Counters and histogram buckets accumulate across shards; gauges
        sum too (shard gauges are per-shard magnitudes — ring depth,
        engine seconds — whose fleet total is the meaningful roll-up).
        """
        if not self.enabled:
            return
        if len(values) != self._n_slots:
            raise ValueError(
                f"snapshot has {len(values)} slots, registry declares {self._n_slots}"
            )
        if _np is not None:
            self._values = self._values + _np.asarray(values, dtype=_np.float64)
        else:
            self._values = [a + float(b) for a, b in zip(self._values, values)]

    # -- snapshots ----------------------------------------------------
    def schema(self):
        """``[(name, kind)]`` in registration (slot) order."""
        return [(name, kind) for name, kind, _off in self._order]

    def snapshot(self, include_buckets=False):
        """Structured ``{name: value-or-summary}`` dict of every metric."""
        out = {}
        for name, kind, _off in self._order:
            metric = self._metrics[name]
            if kind == KIND_HISTOGRAM:
                summary = metric.summary()
                if include_buckets:
                    summary["buckets"] = metric.counts()
                out[name] = summary
            else:
                out[name] = metric.value
        return out


class SlowOpLog:
    """Threshold-gated bounded ring of structured slow-op events.

    ``note()`` is called on every timed operation but only records those
    at or above ``threshold`` seconds, so the steady-state cost is one
    comparison.  The ring is bounded (oldest events fall off) and each
    event is a plain dict — ``{"op", "seconds", "at", **detail}`` —
    suitable for structured logging or the ``metrics()`` snapshot.
    """

    __slots__ = ("threshold", "_ring", "dropped")

    def __init__(self, threshold=0.050, capacity=256):
        self.threshold = float(threshold)
        self._ring = deque(maxlen=int(capacity))
        self.dropped = 0

    def note(self, op, seconds, **detail):
        if seconds < self.threshold:
            return False
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        event = {"op": op, "seconds": float(seconds), "at": monotonic()}
        if detail:
            event.update(detail)
        self._ring.append(event)
        return True

    def snapshot(self):
        return list(self._ring)

    def __len__(self):
        return len(self._ring)
