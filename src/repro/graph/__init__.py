"""Graph substrate: dynamic graph store, neighborhoods, AG compiler, generators."""

from repro.graph.bipartite import BipartiteGraph, build_bipartite
from repro.graph.dynamic_graph import DynamicGraph, GraphError
from repro.graph.generators import (
    DATASETS,
    community_graph,
    load_dataset,
    paper_figure1,
    random_graph,
    social_graph,
    web_graph,
)
from repro.graph.neighborhoods import BOTH, IN, OUT, Neighborhood
from repro.graph.streams import (
    PlaybackStats,
    ReadEvent,
    StreamPlayer,
    StructureEvent,
    StructureOp,
    WriteEvent,
    merge_streams,
)

__all__ = [
    "BipartiteGraph",
    "build_bipartite",
    "DynamicGraph",
    "GraphError",
    "DATASETS",
    "community_graph",
    "load_dataset",
    "paper_figure1",
    "random_graph",
    "social_graph",
    "web_graph",
    "Neighborhood",
    "IN",
    "OUT",
    "BOTH",
    "PlaybackStats",
    "ReadEvent",
    "StreamPlayer",
    "StructureEvent",
    "StructureOp",
    "WriteEvent",
    "merge_streams",
]
