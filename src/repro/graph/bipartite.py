"""The bipartite writer/reader graph ``AG`` (paper Section 3.1).

Given the data graph ``G(V, E)`` and a query ``⟨F, w, N, pred⟩``, EAGr's
first compilation step duplicates every node into a *writer* role and a
*reader* role and materializes the directed bipartite graph ``AG(V', E')``:
an edge ``u_w -> v_r`` exists iff ``u ∈ N(v)`` and ``pred(v)`` holds.  A node
appears as a reader only if it has a query, and as a writer only if it feeds
at least one reader (node ``g`` in the paper's Figure 1(c) is a reader but
not a writer input).

All overlay construction algorithms (Section 3.2) consume this structure, so
it is optimized for what they need: stable integer indexing of writers, fast
access to each reader's input list, and per-writer out-degree counts (the
FP-tree item ordering).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.neighborhoods import Neighborhood

NodeId = Hashable


class BipartiteGraph:
    """``AG``: readers with their writer input lists.

    Attributes
    ----------
    reader_inputs:
        Mapping from reader node id to the *sorted tuple* of writer node ids
        in its input list.  Sorting makes construction deterministic.
    writer_out_degree:
        For each writer, the number of readers whose input list contains it
        (its out-degree in ``AG``) — the frequency used to order FP-tree
        items.
    """

    def __init__(self, reader_inputs: Dict[NodeId, Tuple[NodeId, ...]]) -> None:
        self.reader_inputs: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self.writer_out_degree: Dict[NodeId, int] = {}
        for reader, inputs in reader_inputs.items():
            ordered = tuple(sorted(set(inputs), key=_sort_key))
            self.reader_inputs[reader] = ordered
            for writer in ordered:
                self.writer_out_degree[writer] = self.writer_out_degree.get(writer, 0) + 1

    # ------------------------------------------------------------------

    @property
    def readers(self) -> List[NodeId]:
        return list(self.reader_inputs)

    @property
    def writers(self) -> Set[NodeId]:
        return set(self.writer_out_degree)

    @property
    def num_edges(self) -> int:
        """|E'| — the denominator of the sharing index (Section 3.1)."""
        return sum(len(inputs) for inputs in self.reader_inputs.values())

    def inputs(self, reader: NodeId) -> Tuple[NodeId, ...]:
        return self.reader_inputs[reader]

    def __contains__(self, reader: NodeId) -> bool:
        return reader in self.reader_inputs

    def __len__(self) -> int:
        return len(self.reader_inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BipartiteGraph(readers={len(self.reader_inputs)}, "
            f"writers={len(self.writer_out_degree)}, edges={self.num_edges})"
        )


def _sort_key(node: NodeId) -> Tuple[str, str]:
    # Node ids may mix ints and strings; sort by (type name, repr) so the
    # ordering is total and deterministic without requiring comparability.
    return (type(node).__name__, repr(node))


def build_bipartite(
    graph: DynamicGraph,
    neighborhood: Neighborhood,
    predicate: Optional[Callable[[NodeId], bool]] = None,
    readers: Optional[Iterable[NodeId]] = None,
) -> BipartiteGraph:
    """Compile ``AG`` from the data graph and the query's ``N``/``pred``.

    Parameters
    ----------
    graph:
        The data graph ``G``.
    neighborhood:
        The query's neighborhood selection function ``N``.
    predicate:
        ``pred`` — selects the subset of nodes whose query is materialized;
        ``None`` means all nodes (the paper's main experiments use
        ``v ∈ V``).  Readers with empty input lists are dropped: their
        aggregate is identically the aggregate of nothing and needs no
        overlay machinery.
    readers:
        Optional explicit reader universe; defaults to all graph nodes.

    Returns
    -------
    BipartiteGraph
    """
    reader_inputs: Dict[NodeId, Tuple[NodeId, ...]] = {}
    universe = graph.nodes() if readers is None else readers
    for node in universe:
        if node not in graph:
            continue
        if predicate is not None and not predicate(node):
            continue
        members = neighborhood(graph, node)
        if members:
            reader_inputs[node] = tuple(members)
    return BipartiteGraph(reader_inputs)
