"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates on SNAP/LAW graphs (LiveJournal, Google+, eu-2005,
uk-2002).  Those datasets are not available offline, so — per the
substitution rule documented in DESIGN.md — we generate graphs that
reproduce the *property the experiments actually depend on*: how much the
adjacency lists of nearby readers overlap, which determines how well the
overlay construction algorithms compress ``AG``.

* :func:`social_graph` uses preferential attachment.  Adjacency lists end up
  largely disjoint apart from hubs, matching the paper's observation that
  social graphs compress poorly (sharing index roughly 20-40%).
* :func:`web_graph` uses the Kleinberg/Kumar *copying model*: a new page
  copies most of an existing page's out-links.  This yields heavily shared
  adjacency lists, matching the high compressibility of web crawls (sharing
  index 60-80% in the paper).
* :func:`paper_figure1` is the 7-node example graph the paper develops all
  of its worked examples on; tests use it to pin algorithm behaviour to the
  published figures.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.graph.dynamic_graph import DynamicGraph


def paper_figure1() -> DynamicGraph:
    """The running-example graph of the paper's Figure 1(a).

    Edges are directed; the query ``N(x) = {y | y -> x}`` over this graph
    gives the input lists shown in Figure 1(b), e.g. ``N(a) = {c, d, e, f}``
    and ``N(g) = {a, b, c, d, e, f}``.
    """
    inputs: Dict[str, Tuple[str, ...]] = {
        "a": ("c", "d", "e", "f"),
        "b": ("d", "e", "f"),
        "c": ("a", "b", "d", "e", "f"),
        "d": ("a", "b", "c", "e", "f"),
        "e": ("a", "b", "c", "d"),
        "f": ("a", "b", "c", "d", "e"),
        "g": ("a", "b", "c", "d", "e", "f"),
    }
    graph = DynamicGraph()
    for reader, writers in inputs.items():
        graph.add_node(reader)
        for writer in writers:
            graph.add_edge(writer, reader)
    return graph


def social_graph(
    num_nodes: int = 2000,
    edges_per_node: int = 8,
    seed: int = 7,
) -> DynamicGraph:
    """Preferential-attachment graph (LiveJournal / Google+ stand-in).

    Each arriving node attaches ``edges_per_node`` directed edges *from*
    existing nodes chosen preferentially by degree *to* itself (so the new
    node's 1-hop in-neighborhood is a random, hub-biased set — adjacency
    lists overlap only on hubs).  A small fraction of reciprocal edges is
    added to mimic the mixed directed/undirected nature of social networks.
    """
    if num_nodes < edges_per_node + 1:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = random.Random(seed)
    graph = DynamicGraph()
    # Repeated-nodes list implements preferential attachment in O(1) per draw.
    attachment_pool: List[int] = []
    seed_core = edges_per_node + 1
    for node in range(seed_core):
        graph.add_node(node)
    for u in range(seed_core):
        for v in range(seed_core):
            if u != v:
                graph.add_edge(u, v)
                attachment_pool.append(u)
    for node in range(seed_core, num_nodes):
        graph.add_node(node)
        chosen = set()
        attempts = 0
        while len(chosen) < edges_per_node and attempts < edges_per_node * 20:
            candidate = rng.choice(attachment_pool)
            attempts += 1
            if candidate != node:
                chosen.add(candidate)
        for source in chosen:
            graph.add_edge(source, node)
            attachment_pool.append(source)
            attachment_pool.append(node)
            if rng.random() < 0.3:  # reciprocal follow-back
                graph.add_edge(node, source)
    return graph


def web_graph(
    num_nodes: int = 2000,
    out_degree: int = 8,
    copy_probability: float = 0.9,
    seed: int = 11,
) -> DynamicGraph:
    """Copying-model web graph (eu-2005 / uk-2002 stand-in).

    A new page picks a random *prototype* page and, for each of its
    ``out_degree`` links, copies the prototype's corresponding link with
    probability ``copy_probability`` (else links to a uniform random page).
    High copy probability produces many near-identical adjacency lists —
    exactly the big-biclique structure web-graph compression exploits.
    """
    if not 0.0 <= copy_probability <= 1.0:
        raise ValueError("copy_probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = DynamicGraph()
    seed_core = out_degree + 2
    for node in range(seed_core):
        graph.add_node(node)
    for u in range(seed_core):
        for v in range(seed_core):
            if u != v:
                graph.add_edge(u, v)
    out_lists: Dict[int, List[int]] = {
        u: [v for v in range(seed_core) if v != u][:out_degree] for u in range(seed_core)
    }
    for node in range(seed_core, num_nodes):
        graph.add_node(node)
        prototype = rng.randrange(node)
        proto_links = out_lists[prototype]
        links = set()
        for slot in range(out_degree):
            if slot < len(proto_links) and rng.random() < copy_probability:
                target = proto_links[slot]
            else:
                target = rng.randrange(node)
            if target != node:
                links.add(target)
        for target in links:
            graph.add_edge(node, target)
        out_lists[node] = sorted(links)
    return graph


def random_graph(num_nodes: int, num_edges: int, seed: int = 3) -> DynamicGraph:
    """Uniform (Erdős–Rényi style) directed graph — worst case for sharing."""
    rng = random.Random(seed)
    graph = DynamicGraph()
    for node in range(num_nodes):
        graph.add_node(node)
    added = 0
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise ValueError("too many edges requested")
    while added < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u != v and graph.add_edge(u, v):
            added += 1
    return graph


def community_graph(
    num_communities: int = 20,
    community_size: int = 30,
    intra_probability: float = 0.6,
    inter_edges: int = 60,
    seed: int = 5,
) -> DynamicGraph:
    """Dense-community graph (Google+ social-circles stand-in).

    Nodes within a community link densely (readers in the same community
    share most of their input lists — moderate bicliques), plus sparse random
    cross-community edges.
    """
    rng = random.Random(seed)
    graph = DynamicGraph()
    total = num_communities * community_size
    for node in range(total):
        graph.add_node(node)
    for c in range(num_communities):
        base = c * community_size
        members = range(base, base + community_size)
        for u in members:
            for v in members:
                if u != v and rng.random() < intra_probability:
                    graph.add_edge(u, v)
    for _ in range(inter_edges):
        u = rng.randrange(total)
        v = rng.randrange(total)
        if u != v:
            graph.add_edge(u, v)
    return graph


#: Named dataset registry used by benchmarks: paper dataset -> stand-in.
DATASETS = {
    "livejournal-small": lambda scale=1.0, seed=7: social_graph(
        num_nodes=int(1500 * scale), edges_per_node=10, seed=seed
    ),
    "gplus-small": lambda scale=1.0, seed=9: community_graph(
        num_communities=max(2, int(12 * scale)), community_size=25, seed=seed
    ),
    "eu2005-small": lambda scale=1.0, seed=11: web_graph(
        num_nodes=int(1500 * scale), out_degree=10, copy_probability=0.92, seed=seed
    ),
    "uk2002-small": lambda scale=1.0, seed=13: web_graph(
        num_nodes=int(2500 * scale), out_degree=12, copy_probability=0.95, seed=seed
    ),
}


def load_dataset(name: str, scale: float = 1.0, seed: Optional[int] = None) -> DynamicGraph:
    """Instantiate one of the named stand-in datasets (see :data:`DATASETS`)."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; options: {sorted(DATASETS)}") from None
    if seed is None:
        return factory(scale=scale)
    return factory(scale=scale, seed=seed)
