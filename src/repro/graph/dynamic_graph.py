"""Dynamic data graph: the substrate EAGr queries run against.

The paper (Section 2.1) models the data as a heterogeneous directed graph
``G(V, E)`` whose *structure* changes via a time-stamped structure stream and
whose *content* (attribute values on nodes) changes via per-node content
streams.  This module implements the structure side: an in-memory directed
graph supporting fast neighbor iteration in both directions, node/edge
addition and removal, and an append-only structure log that downstream
components (e.g. incremental overlay maintenance, Section 3.3) can subscribe
to.

Content streams are deliberately *not* stored here: the execution engine
(:mod:`repro.core.execution`) owns sliding-window state per writer.  The
graph only needs to answer neighborhood queries.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.streams import StructureEvent, StructureOp

NodeId = Hashable


class GraphError(Exception):
    """Raised for invalid structural operations (e.g. removing a missing node)."""


class DynamicGraph:
    """A directed graph with O(1) amortized updates and bidirectional adjacency.

    Nodes are arbitrary hashable identifiers.  Edges are simple (no parallel
    edges); re-adding an existing edge is a no-op that returns ``False``.
    Undirected relationships (e.g. friendship edges in a social network) are
    represented as a pair of directed edges via :meth:`add_undirected_edge`.

    Node attributes are supported through a per-node attribute dict, used by
    filtered neighborhood functions (Section 2.1 allows aggregating over
    subsets of neighborhoods selected by a predicate).
    """

    def __init__(self) -> None:
        self._out: Dict[NodeId, Set[NodeId]] = {}
        self._in: Dict[NodeId, Set[NodeId]] = {}
        self._attrs: Dict[NodeId, Dict[str, object]] = {}
        self._num_edges = 0
        self._listeners: List[Callable[[StructureEvent], None]] = []
        self._clock = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._out)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __contains__(self, node: NodeId) -> bool:
        return node in self._out

    def __len__(self) -> int:
        return len(self._out)

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._out)

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        for u, targets in self._out.items():
            for v in targets:
                yield (u, v)

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._out and v in self._out[u]

    def out_neighbors(self, node: NodeId) -> Set[NodeId]:
        """Nodes ``v`` such that ``node -> v`` exists."""
        try:
            return self._out[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def in_neighbors(self, node: NodeId) -> Set[NodeId]:
        """Nodes ``u`` such that ``u -> node`` exists."""
        try:
            return self._in[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        """Union of in- and out-neighbors (the undirected view)."""
        return self.in_neighbors(node) | self.out_neighbors(node)

    def out_degree(self, node: NodeId) -> int:
        return len(self.out_neighbors(node))

    def in_degree(self, node: NodeId) -> int:
        return len(self.in_neighbors(node))

    # ------------------------------------------------------------------
    # attributes
    # ------------------------------------------------------------------

    def set_attr(self, node: NodeId, key: str, value: object) -> None:
        if node not in self._out:
            raise GraphError(f"node {node!r} not in graph")
        self._attrs.setdefault(node, {})[key] = value

    def get_attr(self, node: NodeId, key: str, default: object = None) -> object:
        return self._attrs.get(node, {}).get(key, default)

    # ------------------------------------------------------------------
    # structure updates
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[[StructureEvent], None]) -> None:
        """Register a callback invoked after every successful structure change.

        Incremental overlay maintenance (Section 3.3) subscribes here so the
        overlay tracks the data graph without the caller wiring each change
        through by hand.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[StructureEvent], None]) -> None:
        self._listeners.remove(listener)

    def __getstate__(self) -> Dict[str, object]:
        """Pickle the structure only: listeners are process-local callbacks
        (e.g. an attached overlay maintainer) and never travel — a shard
        worker process receiving this graph re-attaches its own."""
        state = self.__dict__.copy()
        state["_listeners"] = []
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def _emit(self, op: StructureOp, u: NodeId, v: Optional[NodeId] = None) -> None:
        self._clock += 1
        if not self._listeners:
            return
        event = StructureEvent(op=op, u=u, v=v, timestamp=self._clock)
        for listener in self._listeners:
            listener(event)

    def add_node(self, node: NodeId) -> bool:
        """Add ``node``; returns ``False`` if it already existed."""
        if node in self._out:
            return False
        self._out[node] = set()
        self._in[node] = set()
        self._emit(StructureOp.ADD_NODE, node)
        return True

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._out:
            raise GraphError(f"node {node!r} not in graph")
        for v in list(self._out[node]):
            self.remove_edge(node, v)
        for u in list(self._in[node]):
            self.remove_edge(u, node)
        del self._out[node]
        del self._in[node]
        self._attrs.pop(node, None)
        self._emit(StructureOp.REMOVE_NODE, node)

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Add the directed edge ``u -> v`` (creating endpoints as needed).

        Returns ``False`` (and emits nothing) if the edge already existed.
        Self loops are rejected: a node never feeds its own ego network.
        """
        if u == v:
            raise GraphError("self loops are not supported")
        self.add_node(u)
        self.add_node(v)
        if v in self._out[u]:
            return False
        self._out[u].add(v)
        self._in[v].add(u)
        self._num_edges += 1
        self._emit(StructureOp.ADD_EDGE, u, v)
        return True

    def add_undirected_edge(self, u: NodeId, v: NodeId) -> None:
        """Add ``u -> v`` and ``v -> u`` (a symmetric friendship-style edge)."""
        self.add_edge(u, v)
        self.add_edge(v, u)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        if not self.has_edge(u, v):
            raise GraphError(f"edge {u!r}->{v!r} not in graph")
        self._out[u].discard(v)
        self._in[v].discard(u)
        self._num_edges -= 1
        self._emit(StructureOp.REMOVE_EDGE, u, v)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[NodeId, NodeId]]) -> "DynamicGraph":
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self) -> "DynamicGraph":
        clone = DynamicGraph()
        for node in self.nodes():
            clone.add_node(node)
        for u, v in self.edges():
            clone.add_edge(u, v)
        for node, attrs in self._attrs.items():
            for key, value in attrs.items():
                clone.set_attr(node, key, value)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicGraph(nodes={self.num_nodes}, edges={self.num_edges})"
