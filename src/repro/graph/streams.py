"""Stream event types and playback for EAGr.

Section 2.1 of the paper distinguishes two kinds of input streams:

* the *structure* stream ``S_G`` carrying node/edge additions and deletions,
* per-node *content* streams ``S_v`` carrying timestamped attribute writes.

On top of writes, a workload also contains *reads* — user requests for the
current value of a quasi-continuous query at a node.  The evaluation (Section
5.1) replays traces of interleaved reads and writes against the system, so we
model all three uniformly as :class:`Event` objects that a
:class:`StreamPlayer` feeds to any sink exposing ``write``/``read``/
``apply_structure_event`` (the engine API).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, List, Optional, Protocol, Sequence

NodeId = Hashable


class StructureOp(enum.Enum):
    """Kinds of structural change carried on the structure stream."""

    ADD_NODE = "add_node"
    REMOVE_NODE = "remove_node"
    ADD_EDGE = "add_edge"
    REMOVE_EDGE = "remove_edge"


@dataclass(frozen=True, slots=True)
class StructureEvent:
    """One entry of the structure stream ``S_G``."""

    op: StructureOp
    u: NodeId
    v: Optional[NodeId] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        needs_v = self.op in (StructureOp.ADD_EDGE, StructureOp.REMOVE_EDGE)
        if needs_v and self.v is None:
            raise ValueError(f"{self.op} requires both endpoints")


@dataclass(frozen=True, slots=True)
class WriteEvent:
    """A content update ("write on v"): node ``node`` emitted ``value``."""

    node: NodeId
    value: object
    timestamp: float = 0.0


@dataclass(frozen=True, slots=True)
class ReadEvent:
    """A read on ``node``: request for the current value of F(N(node))."""

    node: NodeId
    timestamp: float = 0.0


Event = object  # StructureEvent | WriteEvent | ReadEvent


class EventSink(Protocol):
    """The interface a stream player drives (implemented by the engine)."""

    def write(self, node: NodeId, value: object, timestamp: Optional[float] = None) -> None:
        ...

    def read(self, node: NodeId) -> object:
        ...

    def apply_structure_event(self, event: StructureEvent) -> None:
        ...


@dataclass
class PlaybackStats:
    """Counters accumulated by :class:`StreamPlayer`."""

    writes: int = 0
    reads: int = 0
    structure_ops: int = 0
    read_results: List[object] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.writes + self.reads + self.structure_ops


class StreamPlayer:
    """Replays a sequence of events against a sink in timestamp order.

    The player is intentionally dumb — ordering, rates and distributions are
    the responsibility of the workload generators in :mod:`repro.workload`.
    Setting ``collect_results`` keeps every read result, which correctness
    tests use to compare engines against brute-force evaluation.
    """

    def __init__(self, sink: EventSink, collect_results: bool = False) -> None:
        self._sink = sink
        self._collect = collect_results

    def play(self, events: Iterable[Event]) -> PlaybackStats:
        """Feed every event to the sink in order; returns counters."""
        stats = PlaybackStats()
        for event in events:
            if isinstance(event, WriteEvent):
                self._sink.write(event.node, event.value, timestamp=event.timestamp)
                stats.writes += 1
            elif isinstance(event, ReadEvent):
                result = self._sink.read(event.node)
                stats.reads += 1
                if self._collect:
                    stats.read_results.append(result)
            elif isinstance(event, StructureEvent):
                self._sink.apply_structure_event(event)
                stats.structure_ops += 1
            else:
                raise TypeError(f"unknown event type: {type(event).__name__}")
        return stats


def merge_streams(*streams: Sequence[Event]) -> Iterator[Event]:
    """Merge pre-sorted event streams into one globally timestamp-ordered stream.

    A simple k-way merge; ties are broken by stream index so merging is
    deterministic (important for reproducible benchmarks).
    """
    import heapq

    heap = []
    iterators = [iter(s) for s in streams]
    for idx, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            heap.append((_event_ts(first), idx, 0, first))
    heapq.heapify(heap)
    counter = len(heap)
    while heap:
        _, idx, _, event = heapq.heappop(heap)
        yield event
        nxt = next(iterators[idx], None)
        if nxt is not None:
            counter += 1
            heapq.heappush(heap, (_event_ts(nxt), idx, counter, nxt))


def _event_ts(event: Event) -> float:
    return getattr(event, "timestamp", 0.0)
