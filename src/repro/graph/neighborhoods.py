"""Neighborhood selection functions ``N(v)``.

An ego-centric aggregate query (paper Section 2.1) is parameterized by a
neighborhood selection function ``N``: for each query node ``v``, ``N(v)`` is
the set of nodes whose content streams feed the aggregate at ``v``.  The
paper's running example uses ``N(x) = {y | y -> x}`` (in-neighbors); the
framework also supports multi-hop neighborhoods (Section 5.4 evaluates 2-hop
aggregates) and *filtered* neighborhoods that aggregate over a predicate-
selected subset (Section 1's spatio-temporal example).

A :class:`Neighborhood` is a small, picklable-ish description object; calling
it with ``(graph, node)`` materializes the input set.  Keeping this as data
(rather than a bare lambda) lets the bipartite compiler and the incremental
maintenance code reason about the hop count when processing edge updates
(Section 3.3 notes that for 2-hop queries a single edge change affects many
readers).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Set

from repro.graph.dynamic_graph import DynamicGraph

NodeId = Hashable

#: Direction selectors for a hop.
IN = "in"
OUT = "out"
BOTH = "both"

_VALID_DIRECTIONS = (IN, OUT, BOTH)


class Neighborhood:
    """A neighborhood selection function ``N``.

    Parameters
    ----------
    hops:
        Number of hops to expand (``1`` for the classic ego network).
    direction:
        Which edges to follow: ``"in"`` (``{y | y -> x}``, the paper's
        default), ``"out"``, or ``"both"``.
    include_self:
        Whether the ego node itself contributes to its own aggregate.
        The paper's example excludes it; feeds in real social networks often
        include it, so it is a flag.
    node_filter:
        Optional predicate ``f(graph, node) -> bool`` applied to candidate
        members, supporting filtered neighborhoods.
    """

    def __init__(
        self,
        hops: int = 1,
        direction: str = IN,
        include_self: bool = False,
        node_filter: Optional[Callable[[DynamicGraph, NodeId], bool]] = None,
    ) -> None:
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if direction not in _VALID_DIRECTIONS:
            raise ValueError(f"direction must be one of {_VALID_DIRECTIONS}")
        self.hops = hops
        self.direction = direction
        self.include_self = include_self
        self.node_filter = node_filter

    # -- convenient constructors ---------------------------------------

    @classmethod
    def in_neighbors(cls, hops: int = 1, **kwargs) -> "Neighborhood":
        """``N(x) = {y | y ->* x}`` within ``hops`` hops (the paper default)."""
        return cls(hops=hops, direction=IN, **kwargs)

    @classmethod
    def out_neighbors(cls, hops: int = 1, **kwargs) -> "Neighborhood":
        """``N(x) = {y | x ->* y}`` — e.g. "accounts I follow"."""
        return cls(hops=hops, direction=OUT, **kwargs)

    @classmethod
    def undirected(cls, hops: int = 1, **kwargs) -> "Neighborhood":
        """Ignore edge direction (symmetric friendship networks)."""
        return cls(hops=hops, direction=BOTH, **kwargs)

    # -- evaluation ------------------------------------------------------

    def _step(self, graph: DynamicGraph, node: NodeId) -> Set[NodeId]:
        if self.direction == IN:
            return graph.in_neighbors(node)
        if self.direction == OUT:
            return graph.out_neighbors(node)
        return graph.neighbors(node)

    def __call__(self, graph: DynamicGraph, node: NodeId) -> Set[NodeId]:
        """Materialize ``N(node)`` on the current graph."""
        frontier = {node}
        seen = {node}
        members: Set[NodeId] = set()
        for _ in range(self.hops):
            nxt: Set[NodeId] = set()
            for u in frontier:
                nxt |= self._step(graph, u)
            nxt -= seen
            members |= nxt
            seen |= nxt
            frontier = nxt
            if not frontier:
                break
        if self.include_self:
            members.add(node)
        else:
            members.discard(node)
        if self.node_filter is not None:
            members = {m for m in members if self.node_filter(graph, m)}
        return members

    def affected_readers(self, graph: DynamicGraph, node: NodeId) -> Set[NodeId]:
        """Readers whose ``N(r)`` may include ``node`` (reverse expansion).

        Used by incremental overlay maintenance: when ``node``'s incident
        structure changes, these are the readers whose input lists must be
        re-derived.  This is the hop-reversed traversal of :meth:`__call__`.
        """
        reverse = {IN: OUT, OUT: IN, BOTH: BOTH}[self.direction]
        probe = Neighborhood(
            hops=self.hops, direction=reverse, include_self=self.include_self
        )
        return probe(graph, node) | ({node} if self.include_self else set())

    def __repr__(self) -> str:
        flt = ", filtered" if self.node_filter else ""
        self_part = ", include_self" if self.include_self else ""
        return f"Neighborhood({self.hops}-hop, {self.direction}{self_part}{flt})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Neighborhood):
            return NotImplemented
        return (
            self.hops == other.hops
            and self.direction == other.direction
            and self.include_self == other.include_self
            and self.node_filter is other.node_filter
        )

    def __hash__(self) -> int:
        return hash((self.hops, self.direction, self.include_self, id(self.node_filter)))
