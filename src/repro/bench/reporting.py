"""Plain-text reporting of benchmark series.

Every bench target prints the rows/series its paper figure plots, in a
uniform fixed-width format that survives pytest capture (`-s`) and log
files.  No plotting dependencies — the *shape* is the deliverable, and
shapes are legible in aligned columns.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 10_000 or abs(value) < 0.01):
            return f"{value:.3e}"
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: Optional[str] = None
) -> str:
    """Render an aligned fixed-width table."""
    rendered: List[List[str]] = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: Optional[str] = None
) -> None:
    print()
    print(format_table(headers, rows, title=title))


def print_series(name: str, xs: Sequence, ys: Sequence, x_label: str = "x") -> None:
    """Print one figure series as two aligned columns."""
    print_table([x_label, name], list(zip(xs, ys)))
