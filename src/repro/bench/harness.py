"""Measurement harness for the paper's evaluation (Section 5.1).

The paper's main metric is **end-to-end throughput**: total reads+writes
served per second, which "accounts for the side effects of all potentially
unknown system parameters".  :func:`run_workload` plays an event list
against an engine and reports throughput plus per-read latency percentiles
(Figure 13(c) reports worst-case / 95th / average read latency).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.engine import EAGrEngine
from repro.graph.streams import ReadEvent, WriteEvent


@dataclass
class WorkloadResult:
    """Throughput and latency measurements from one run."""

    events: int
    elapsed_seconds: float
    reads: int
    writes: int
    read_latencies: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Events per second (the paper's headline metric)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.events / self.elapsed_seconds

    def latency_percentile(self, percentile: float) -> float:
        """Read latency at ``percentile`` (0-100), in seconds."""
        if not self.read_latencies:
            return 0.0
        ordered = sorted(self.read_latencies)
        rank = min(
            len(ordered) - 1, max(0, int(round(percentile / 100.0 * (len(ordered) - 1))))
        )
        return ordered[rank]

    @property
    def average_read_latency(self) -> float:
        if not self.read_latencies:
            return 0.0
        return sum(self.read_latencies) / len(self.read_latencies)

    @property
    def worst_read_latency(self) -> float:
        return max(self.read_latencies) if self.read_latencies else 0.0


def run_workload(
    engine: EAGrEngine,
    events: Sequence,
    measure_latency: bool = False,
) -> WorkloadResult:
    """Play ``events`` against ``engine``, timing the whole run.

    With ``measure_latency`` each read is timed individually (per-query
    isolation, as in the paper's latency experiment); this adds per-event
    clock overhead, so throughput comparisons should leave it off.
    """
    reads = 0
    writes = 0
    latencies: List[float] = []
    started = time.perf_counter()
    if measure_latency:
        for event in events:
            if isinstance(event, WriteEvent):
                engine.write(event.node, event.value, event.timestamp)
                writes += 1
            else:
                t0 = time.perf_counter()
                engine.read(event.node)
                latencies.append(time.perf_counter() - t0)
                reads += 1
    else:
        for event in events:
            if isinstance(event, WriteEvent):
                engine.write(event.node, event.value, event.timestamp)
                writes += 1
            else:
                engine.read(event.node)
                reads += 1
    elapsed = time.perf_counter() - started
    return WorkloadResult(
        events=reads + writes,
        elapsed_seconds=elapsed,
        reads=reads,
        writes=writes,
        read_latencies=latencies,
    )


def run_segmented(
    engine: EAGrEngine, events: Sequence, segment_size: int
) -> List[float]:
    """Per-segment processing times (Figure 13(a): "time per 25,000 queries").

    Returns elapsed seconds for each consecutive ``segment_size`` events.
    """
    durations: List[float] = []
    position = 0
    while position < len(events):
        segment = events[position : position + segment_size]
        started = time.perf_counter()
        for event in segment:
            if isinstance(event, WriteEvent):
                engine.write(event.node, event.value, event.timestamp)
            elif isinstance(event, ReadEvent):
                engine.read(event.node)
        durations.append(time.perf_counter() - started)
        position += segment_size
    return durations
