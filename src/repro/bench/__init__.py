"""Benchmark harness: workload runners and plain-text reporting."""

from repro.bench.harness import WorkloadResult, run_segmented, run_workload
from repro.bench.reporting import format_table, print_series, print_table

__all__ = [
    "WorkloadResult",
    "run_segmented",
    "run_workload",
    "format_table",
    "print_series",
    "print_table",
]
