"""Shard side of the serving layer: spec, host, and worker loop.

A :class:`ShardSpec` is the *picklable* description of one shard's slice of
the deployment — the data graph, the query's components, the shard's reader
set, and the engine configuration.  It travels to a worker process (spawn
context: nothing is inherited, everything arrives by pickle) where
:meth:`ShardSpec.build` constructs the actual :class:`ShardHost`: a full
:class:`~repro.core.engine.EAGrEngine` compiled for exactly this shard's
readers (the paper's Conclusions partitioning: "for each machine, an
overlay can be constructed for the readers assigned to that machine"),
plus the shard-local subscription state.

The host is transport-agnostic: :meth:`ShardHost.handle` maps one request
tuple to one reply tuple (see :mod:`repro.serve.messages`), and
:func:`shard_worker` is the process entry point that pumps a request queue
through it.  The in-process executor calls ``handle`` directly — same code
path, no queues — which is what the CI smoke tests run on.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.query import EgoQuery
from repro.serve.messages import (
    OP_CHECKPOINT,
    OP_DRAIN,
    OP_READ,
    OP_STATS,
    OP_STOP,
    OP_SUBSCRIBE,
    OP_UNSUBSCRIBE,
    OP_WRITE,
    R_ERR,
    R_OK,
    R_STOPPED,
    R_WRITE,
    ShardCheckpoint,
)

NodeId = Hashable


class _ReaderMembership:
    """Picklable reader predicate: membership in the shard's reader set.

    The front-end evaluates the user's own predicate *once* when it
    partitions the reader space, so the set already encodes it — no user
    callable (potentially an unpicklable lambda) needs to travel.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes: FrozenSet[NodeId]) -> None:
        self.nodes = nodes

    def __call__(self, node: NodeId) -> bool:
        return node in self.nodes


class ShardSpec:
    """Everything a worker process needs to stand up one shard.

    Parameters
    ----------
    graph:
        The data graph (pickled whole; listeners are dropped in transit —
        see :meth:`repro.graph.dynamic_graph.DynamicGraph.__getstate__`).
    query:
        The deployment-wide query.  The shard rebuilds it with a
        membership predicate over ``readers`` (the user predicate is
        already folded into the partition).
    shard_id / num_shards:
        This shard's position in the deployment.
    readers:
        The reader nodes assigned to this shard.
    value_store / engine_kwargs:
        Forwarded to the shard's :class:`~repro.core.engine.EAGrEngine`
        (overlay algorithm, dataflow mode, ...).  Unpicklable engine
        options (e.g. a calibrated cost model holding lambdas) cannot
        travel to worker processes; configure those per-shard via
        defaults instead.
    checkpoint:
        Optional :class:`~repro.serve.messages.ShardCheckpoint` to restore
        on build — the shard resumes with the checkpointed window buffers,
        watch registry, applied batch number and write stamp instead of a
        blank slate (see :meth:`with_checkpoint`).
    faults:
        Optional fault-injection plan for the worker loop (used by the
        crash/restart test harness): ``{"exit_before_writes": N}`` kills
        the worker on *receiving* its N-th write batch without applying
        it; ``{"exit_after_writes": N}`` kills it after *applying* the
        N-th batch but before acknowledging — the applied-but-unacked
        window a real crash exposes.  ``None`` (default) disables both.
    """

    def __init__(
        self,
        graph,
        query: EgoQuery,
        shard_id: int,
        num_shards: int,
        readers: FrozenSet[NodeId],
        value_store: str = "auto",
        engine_kwargs: Optional[Dict[str, Any]] = None,
        checkpoint: Optional[ShardCheckpoint] = None,
        faults: Optional[Dict[str, int]] = None,
    ) -> None:
        self.graph = graph
        # The user's predicate is already folded into ``readers`` by the
        # front-end's partition pass; strip it here so an unpicklable
        # callable (a lambda) never travels to the worker process.
        if query.predicate is not None:
            query = EgoQuery(
                aggregate=query.aggregate,
                window=query.window,
                neighborhood=query.neighborhood,
                predicate=None,
                mode=query.mode,
            )
        self.query = query
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.readers = frozenset(readers)
        self.value_store = value_store
        self.engine_kwargs = dict(engine_kwargs or {})
        self.checkpoint = checkpoint
        self.faults = faults

    def with_checkpoint(
        self, checkpoint: Optional[ShardCheckpoint]
    ) -> "ShardSpec":
        """A shallow copy of this spec that restores ``checkpoint`` on build.

        The graph and query are shared (they are immutable from the
        shard's point of view); only the restart state differs.  The
        front-end uses this to rebuild a dead worker from its last known
        checkpoint.
        """
        spec = copy.copy(self)
        spec.checkpoint = checkpoint
        return spec

    def shard_query(self) -> EgoQuery:
        """The deployment query restricted to this shard's readers."""
        return EgoQuery(
            aggregate=self.query.aggregate,
            window=self.query.window,
            neighborhood=self.query.neighborhood,
            predicate=_ReaderMembership(self.readers),
            mode=self.query.mode,
        )

    def build(self) -> "ShardHost":
        """Construct the live shard (engine + subscription state)."""
        return ShardHost(self)


class ShardHost:
    """One shard's engine plus its slice of the subscription registry.

    After every applied write batch the host diffs *exactly* the watched
    egos in the runtime's changed-reader report against their last
    notified values — so a quiet batch costs one empty report, a busy
    batch costs O(affected watched egos), and no batch ever scans the full
    subscriber table.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.core.engine import EAGrEngine

        self.spec = spec
        self.shard_id = spec.shard_id
        self.engine = EAGrEngine(
            spec.graph,
            spec.shard_query(),
            value_store=spec.value_store,
            **spec.engine_kwargs,
        )
        #: ego -> subscribers watching it (dict-as-ordered-set).
        self.watchers: Dict[NodeId, Dict[Hashable, None]] = {}
        #: ego -> last value delivered (or baselined at subscribe time).
        self.baseline: Dict[NodeId, Any] = {}
        #: Monotone count of write batches applied by *this* host instance.
        self.batches = 0
        #: Highest front-end batch number applied (checkpoint-restored, so
        #: a redo-log replay after restart skips what already landed).
        self.applied_through = 0
        self.notices_emitted = 0
        if spec.checkpoint is not None:
            self._restore(spec.checkpoint)

    def _restore(self, ck: ShardCheckpoint) -> None:
        """Resume from a checkpoint: exact value state, watch registry,
        batch/stamp positions (see :class:`ShardCheckpoint`)."""
        if ck.shard_id != self.shard_id:
            raise ValueError(
                f"checkpoint for shard {ck.shard_id} cannot restore "
                f"shard {self.shard_id}"
            )
        runtime = self.engine.runtime
        # The engine's whole value state is derivable from the writer
        # window buffers: swap in the checkpointed ones and re-materialize.
        runtime.buffers.clear()
        runtime.buffers.update(ck.buffers)
        runtime.clock = ck.clock
        runtime.stamp = ck.stamp
        runtime.rebuild()
        self.applied_through = ck.applied_through
        self.watchers = {
            ego: dict.fromkeys(subs) for ego, subs in ck.watchers.items()
        }
        self.baseline = dict(ck.baseline)

    def checkpoint(self) -> ShardCheckpoint:
        """Snapshot this shard's restart state (pickle-isolated).

        The pickle round-trip both deep-copies (an in-process host keeps
        mutating its live buffers afterwards) and proves the checkpoint
        can cross a process boundary — the in-process executor therefore
        exercises the same serialization surface as the real deployment.
        """
        runtime = self.engine.runtime
        ck = ShardCheckpoint(
            shard_id=self.shard_id,
            applied_through=self.applied_through,
            stamp=runtime.stamp,
            clock=runtime.clock,
            buffers=dict(runtime.buffers),
            watchers={ego: tuple(subs) for ego, subs in self.watchers.items()},
            baseline=dict(self.baseline),
        )
        return pickle.loads(pickle.dumps(ck))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def apply_write_batch(
        self, batch_no: Optional[int], items: List[Tuple]
    ) -> Tuple[int, List[Tuple[Hashable, NodeId, Any, int]]]:
        """Apply one write batch; returns ``(count, notices)``.

        ``batch_no`` is the front-end's per-shard monotone batch number;
        a batch at or below :attr:`applied_through` was already absorbed
        (this request is a redo-log replay after a restart) and is
        skipped, making replays idempotent.  ``notices`` holds
        ``(subscriber, ego, value, stamp)`` for every watched ego whose
        aggregate value actually changed — candidates come from the
        O(affected) changed-reader report, a re-read (batched, pull
        subtrees shared) filters out cancellations, and ``stamp`` is the
        runtime's global write stamp (stable across restarts).
        """
        if batch_no is not None and batch_no <= self.applied_through:
            return 0, []
        engine = self.engine
        count = engine.write_batch(items)
        if batch_no is not None:
            self.applied_through = batch_no
        self.batches += 1
        watchers = self.watchers
        if not watchers:
            # Nobody is listening: consume the pending changed-writer set
            # (keeping it bounded) without compiling reader closures.
            engine.runtime.pop_changed_writers()
            return count, []
        stamp, changed = engine.changed_report()
        candidates = [node for node in changed if node in watchers]
        if not candidates:
            return count, []
        notices: List[Tuple[Hashable, NodeId, Any, int]] = []
        baseline = self.baseline
        for node, value in zip(candidates, engine.read_batch(candidates)):
            if value == baseline.get(node, _MISSING):
                continue
            baseline[node] = value
            for subscriber in watchers[node]:
                notices.append((subscriber, node, value, stamp))
        self.notices_emitted += len(notices)
        return count, notices

    def subscribe(
        self, subscriber: Hashable, nodes: List[NodeId]
    ) -> Tuple[Dict[NodeId, Any], int]:
        """Watch ``nodes`` for ``subscriber``; returns ``(snapshot, stamp)``.

        The baseline equals the current value, so notifications fire
        exactly for changes *after* the subscription (no spurious initial
        delivery).  ``stamp`` is the runtime's current global write stamp
        — the front-end seeds its per-ego replay filter with it, so a
        post-crash redo replay of batches that predate this subscription
        is never delivered to the new subscriber.
        """
        snapshot: Dict[NodeId, Any] = {}
        fresh = [node for node in nodes if node not in self.baseline]
        if fresh:
            for node, value in zip(fresh, self.engine.read_batch(fresh)):
                self.baseline[node] = value
        for node in nodes:
            self.watchers.setdefault(node, {})[subscriber] = None
            snapshot[node] = self.baseline[node]
        return snapshot, self.engine.runtime.stamp

    def unsubscribe(
        self, subscriber: Hashable, nodes: Optional[List[NodeId]] = None
    ) -> int:
        """Stop watching ``nodes`` (``None``: everything); returns removals."""
        targets = list(self.watchers) if nodes is None else nodes
        removed = 0
        for node in targets:
            watching = self.watchers.get(node)
            if watching is not None and watching.pop(subscriber, _MISSING) is not _MISSING:
                removed += 1
                if not watching:
                    del self.watchers[node]
                    self.baseline.pop(node, None)
        return removed

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot (counters, backend, registry sizes)."""
        counters = self.engine.counters
        return {
            "shard": self.shard_id,
            "readers": len(self.engine.overlay.reader_of),
            "batches": self.batches,
            "writes": counters.writes,
            "reads": counters.reads,
            "push_ops": counters.push_ops,
            "pull_ops": counters.pull_ops,
            "watched_egos": len(self.watchers),
            "notices_emitted": self.notices_emitted,
            "value_store_backend": self.engine.value_store_backend,
        }

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Tuple) -> Tuple:
        """Map one request tuple to one reply tuple (never raises)."""
        op = request[0]
        seq = request[1]
        try:
            if op == OP_WRITE:
                count, notices = self.apply_write_batch(request[2], request[3])
                return (R_WRITE, seq, count, notices)
            if op == OP_READ:
                return (R_OK, seq, self.engine.read_batch(request[2]))
            if op == OP_SUBSCRIBE:
                return (R_OK, seq, self.subscribe(request[2], request[3]))
            if op == OP_UNSUBSCRIBE:
                return (R_OK, seq, self.unsubscribe(request[2], request[3]))
            if op == OP_DRAIN:
                return (R_OK, seq, self.batches)
            if op == OP_STATS:
                return (R_OK, seq, self.stats())
            if op == OP_CHECKPOINT:
                return (R_OK, seq, self.checkpoint())
            if op == OP_STOP:
                return (R_STOPPED, seq, None)
            return (R_ERR, seq, f"unknown op {op!r}")
        except Exception as error:  # noqa: BLE001 - reply, don't kill the loop
            return (R_ERR, seq, f"{type(error).__name__}: {error}")


#: Sentinel distinguishing "no baseline yet" from a stored None value.
_MISSING = object()


def shard_worker(spec: ShardSpec, requests, replies) -> None:
    """Process entry point: pump ``requests`` through a fresh shard host.

    Spawn-safe: everything arrives via the pickled ``spec`` and the two
    queues.  The loop is single-threaded, so request order *is* apply
    order — the front-end's FIFO queues give per-shard read-your-writes.
    Exits after acknowledging ``OP_STOP`` (the ``R_STOPPED`` reply also
    tells the front-end's drainer thread to finish).

    When ``spec.faults`` is set (crash/restart tests), the worker kills
    itself at the configured deterministic point: on *receiving* the N-th
    write batch (``exit_before_writes``, batch lost unapplied) or after
    *applying* it but before the reply leaves (``exit_after_writes``, the
    applied-but-unacknowledged window).  ``os._exit`` skips every
    finalizer — as close to ``kill -9`` as the worker can do to itself —
    so recovery is exercised against a genuinely unclean death.
    """
    host = spec.build()
    faults = spec.faults or {}
    exit_before = faults.get("exit_before_writes")
    exit_after = faults.get("exit_after_writes")
    writes_seen = 0
    while True:
        request = requests.get()
        if request[0] == OP_WRITE:
            writes_seen += 1
            if exit_before is not None and writes_seen >= exit_before:
                import os

                os._exit(17)
        reply = host.handle(request)
        if (
            request[0] == OP_WRITE
            and exit_after is not None
            and writes_seen >= exit_after
        ):
            import os

            os._exit(17)
        replies.put(reply)
        if reply[0] == R_STOPPED:
            break
