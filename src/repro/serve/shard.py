"""Shard side of the serving layer: spec, host, and worker loop.

A :class:`ShardSpec` is the *picklable* description of one shard's slice of
the deployment — the data graph, the query's components, the shard's reader
set, and the engine configuration.  It travels to a worker process (spawn
context: nothing is inherited, everything arrives by pickle) where
:meth:`ShardSpec.build` constructs the actual :class:`ShardHost`: a full
:class:`~repro.core.engine.EAGrEngine` compiled for exactly this shard's
readers (the paper's Conclusions partitioning: "for each machine, an
overlay can be constructed for the readers assigned to that machine"),
plus the shard-local subscription state.

The host is transport-agnostic: :meth:`ShardHost.handle` maps one request
tuple to one reply tuple (see :mod:`repro.serve.messages`), and
:func:`shard_worker` is the process entry point that pumps a request queue
through it.  The in-process executor calls ``handle`` directly — same code
path, no queues — which is what the CI smoke tests run on.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.query import EgoQuery
from repro.serve.messages import (
    OP_DRAIN,
    OP_READ,
    OP_STATS,
    OP_STOP,
    OP_SUBSCRIBE,
    OP_UNSUBSCRIBE,
    OP_WRITE,
    R_ERR,
    R_OK,
    R_STOPPED,
    R_WRITE,
)

NodeId = Hashable


class _ReaderMembership:
    """Picklable reader predicate: membership in the shard's reader set.

    The front-end evaluates the user's own predicate *once* when it
    partitions the reader space, so the set already encodes it — no user
    callable (potentially an unpicklable lambda) needs to travel.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes: FrozenSet[NodeId]) -> None:
        self.nodes = nodes

    def __call__(self, node: NodeId) -> bool:
        return node in self.nodes


class ShardSpec:
    """Everything a worker process needs to stand up one shard.

    Parameters
    ----------
    graph:
        The data graph (pickled whole; listeners are dropped in transit —
        see :meth:`repro.graph.dynamic_graph.DynamicGraph.__getstate__`).
    query:
        The deployment-wide query.  The shard rebuilds it with a
        membership predicate over ``readers`` (the user predicate is
        already folded into the partition).
    shard_id / num_shards:
        This shard's position in the deployment.
    readers:
        The reader nodes assigned to this shard.
    value_store / engine_kwargs:
        Forwarded to the shard's :class:`~repro.core.engine.EAGrEngine`
        (overlay algorithm, dataflow mode, ...).  Unpicklable engine
        options (e.g. a calibrated cost model holding lambdas) cannot
        travel to worker processes; configure those per-shard via
        defaults instead.
    """

    def __init__(
        self,
        graph,
        query: EgoQuery,
        shard_id: int,
        num_shards: int,
        readers: FrozenSet[NodeId],
        value_store: str = "auto",
        engine_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.graph = graph
        # The user's predicate is already folded into ``readers`` by the
        # front-end's partition pass; strip it here so an unpicklable
        # callable (a lambda) never travels to the worker process.
        if query.predicate is not None:
            query = EgoQuery(
                aggregate=query.aggregate,
                window=query.window,
                neighborhood=query.neighborhood,
                predicate=None,
                mode=query.mode,
            )
        self.query = query
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.readers = frozenset(readers)
        self.value_store = value_store
        self.engine_kwargs = dict(engine_kwargs or {})

    def shard_query(self) -> EgoQuery:
        """The deployment query restricted to this shard's readers."""
        return EgoQuery(
            aggregate=self.query.aggregate,
            window=self.query.window,
            neighborhood=self.query.neighborhood,
            predicate=_ReaderMembership(self.readers),
            mode=self.query.mode,
        )

    def build(self) -> "ShardHost":
        """Construct the live shard (engine + subscription state)."""
        return ShardHost(self)


class ShardHost:
    """One shard's engine plus its slice of the subscription registry.

    After every applied write batch the host diffs *exactly* the watched
    egos in the runtime's changed-reader report against their last
    notified values — so a quiet batch costs one empty report, a busy
    batch costs O(affected watched egos), and no batch ever scans the full
    subscriber table.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.core.engine import EAGrEngine

        self.spec = spec
        self.shard_id = spec.shard_id
        self.engine = EAGrEngine(
            spec.graph,
            spec.shard_query(),
            value_store=spec.value_store,
            **spec.engine_kwargs,
        )
        #: ego -> subscribers watching it (dict-as-ordered-set).
        self.watchers: Dict[NodeId, Dict[Hashable, None]] = {}
        #: ego -> last value delivered (or baselined at subscribe time).
        self.baseline: Dict[NodeId, Any] = {}
        #: Monotone count of write batches applied on this shard.
        self.batches = 0
        self.notices_emitted = 0

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def apply_write_batch(
        self, items: List[Tuple]
    ) -> Tuple[int, List[Tuple[Hashable, NodeId, Any, int]]]:
        """Apply one write batch; returns ``(count, notices)``.

        ``notices`` holds ``(subscriber, ego, value, batch)`` for every
        watched ego whose aggregate value actually changed — candidates
        come from the O(affected) changed-reader report, and a re-read
        (batched, pull subtrees shared) filters out cancellations.
        """
        engine = self.engine
        count = engine.write_batch(items)
        self.batches += 1
        watchers = self.watchers
        if not watchers:
            # Nobody is listening: consume the pending changed-writer set
            # (keeping it bounded) without compiling reader closures.
            engine.runtime.pop_changed_writers()
            return count, []
        changed = engine.changed_readers()
        candidates = [node for node in changed if node in watchers]
        if not candidates:
            return count, []
        notices: List[Tuple[Hashable, NodeId, Any, int]] = []
        baseline = self.baseline
        for node, value in zip(candidates, engine.read_batch(candidates)):
            if value == baseline.get(node, _MISSING):
                continue
            baseline[node] = value
            for subscriber in watchers[node]:
                notices.append((subscriber, node, value, self.batches))
        self.notices_emitted += len(notices)
        return count, notices

    def subscribe(
        self, subscriber: Hashable, nodes: List[NodeId]
    ) -> Dict[NodeId, Any]:
        """Watch ``nodes`` for ``subscriber``; returns the baseline snapshot.

        The baseline equals the current value, so notifications fire
        exactly for changes *after* the subscription (no spurious initial
        delivery).
        """
        snapshot: Dict[NodeId, Any] = {}
        fresh = [node for node in nodes if node not in self.baseline]
        if fresh:
            for node, value in zip(fresh, self.engine.read_batch(fresh)):
                self.baseline[node] = value
        for node in nodes:
            self.watchers.setdefault(node, {})[subscriber] = None
            snapshot[node] = self.baseline[node]
        return snapshot

    def unsubscribe(
        self, subscriber: Hashable, nodes: Optional[List[NodeId]] = None
    ) -> int:
        """Stop watching ``nodes`` (``None``: everything); returns removals."""
        targets = list(self.watchers) if nodes is None else nodes
        removed = 0
        for node in targets:
            watching = self.watchers.get(node)
            if watching is not None and watching.pop(subscriber, _MISSING) is not _MISSING:
                removed += 1
                if not watching:
                    del self.watchers[node]
                    self.baseline.pop(node, None)
        return removed

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot (counters, backend, registry sizes)."""
        counters = self.engine.counters
        return {
            "shard": self.shard_id,
            "readers": len(self.engine.overlay.reader_of),
            "batches": self.batches,
            "writes": counters.writes,
            "reads": counters.reads,
            "push_ops": counters.push_ops,
            "pull_ops": counters.pull_ops,
            "watched_egos": len(self.watchers),
            "notices_emitted": self.notices_emitted,
            "value_store_backend": self.engine.value_store_backend,
        }

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Tuple) -> Tuple:
        """Map one request tuple to one reply tuple (never raises)."""
        op = request[0]
        seq = request[1]
        try:
            if op == OP_WRITE:
                count, notices = self.apply_write_batch(request[2])
                return (R_WRITE, seq, count, notices)
            if op == OP_READ:
                return (R_OK, seq, self.engine.read_batch(request[2]))
            if op == OP_SUBSCRIBE:
                return (R_OK, seq, self.subscribe(request[2], request[3]))
            if op == OP_UNSUBSCRIBE:
                return (R_OK, seq, self.unsubscribe(request[2], request[3]))
            if op == OP_DRAIN:
                return (R_OK, seq, self.batches)
            if op == OP_STATS:
                return (R_OK, seq, self.stats())
            if op == OP_STOP:
                return (R_STOPPED, seq, None)
            return (R_ERR, seq, f"unknown op {op!r}")
        except Exception as error:  # noqa: BLE001 - reply, don't kill the loop
            return (R_ERR, seq, f"{type(error).__name__}: {error}")


#: Sentinel distinguishing "no baseline yet" from a stored None value.
_MISSING = object()


def shard_worker(spec: ShardSpec, requests, replies) -> None:
    """Process entry point: pump ``requests`` through a fresh shard host.

    Spawn-safe: everything arrives via the pickled ``spec`` and the two
    queues.  The loop is single-threaded, so request order *is* apply
    order — the front-end's FIFO queues give per-shard read-your-writes.
    Exits after acknowledging ``OP_STOP`` (the ``R_STOPPED`` reply also
    tells the front-end's drainer thread to finish).
    """
    host = spec.build()
    while True:
        request = requests.get()
        reply = host.handle(request)
        replies.put(reply)
        if reply[0] == R_STOPPED:
            break
