"""Shard side of the serving layer: spec, host, and worker loop.

A :class:`ShardSpec` is the *picklable* description of one shard's slice of
the deployment — the data graph, the query's components, the shard's reader
set, and the engine configuration.  It travels to a worker process (spawn
context: nothing is inherited, everything arrives by pickle) where
:meth:`ShardSpec.build` constructs the actual :class:`ShardHost`: a full
:class:`~repro.core.engine.EAGrEngine` compiled for exactly this shard's
readers (the paper's Conclusions partitioning: "for each machine, an
overlay can be constructed for the readers assigned to that machine"),
plus the shard-local subscription state.

The host is transport-agnostic: :meth:`ShardHost.handle` maps one request
tuple to one reply tuple (see :mod:`repro.serve.messages`), and
:func:`shard_worker` is the process entry point that pumps a request queue
through it.  The in-process executor calls ``handle`` directly — same code
path, no queues — which is what the CI smoke tests run on.
"""

from __future__ import annotations

import copy
import pickle
from time import monotonic as _monotonic
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.core.query import EgoQuery
from repro.serve import frames as _frames
from repro.serve.messages import (
    OP_CHECKPOINT,
    OP_DRAIN,
    OP_HANDLES,
    OP_READ,
    OP_STATS,
    OP_STOP,
    OP_SUBSCRIBE,
    OP_UNSUBSCRIBE,
    OP_WRITE,
    R_ERR,
    R_OK,
    R_STOPPED,
    R_WRITE,
    ShardCheckpoint,
)

NodeId = Hashable

#: Minimum refresh window for the shard load gauges (seconds); scrapes
#: closer together than this reuse the previously published values.
LOAD_WINDOW = 0.05


class _ReaderMembership:
    """Picklable reader predicate: membership in the shard's reader set.

    The front-end evaluates the user's own predicate *once* when it
    partitions the reader space, so the set already encodes it — no user
    callable (potentially an unpicklable lambda) needs to travel.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes: FrozenSet[NodeId]) -> None:
        self.nodes = nodes

    def __call__(self, node: NodeId) -> bool:
        return node in self.nodes


class ShardSpec:
    """Everything a worker process needs to stand up one shard.

    Parameters
    ----------
    graph:
        The data graph (pickled whole; listeners are dropped in transit —
        see :meth:`repro.graph.dynamic_graph.DynamicGraph.__getstate__`).
    query:
        The deployment-wide query.  The shard rebuilds it with a
        membership predicate over ``readers`` (the user predicate is
        already folded into the partition).
    shard_id / num_shards:
        This shard's position in the deployment.
    readers:
        The reader nodes assigned to this shard.
    value_store / engine_kwargs:
        Forwarded to the shard's :class:`~repro.core.engine.EAGrEngine`
        (overlay algorithm, dataflow mode, ...).  Unpicklable engine
        options (e.g. a calibrated cost model holding lambdas) cannot
        travel to worker processes; configure those per-shard via
        defaults instead.
    checkpoint:
        Optional :class:`~repro.serve.messages.ShardCheckpoint` to restore
        on build — the shard resumes with the checkpointed window buffers,
        watch registry, applied batch number and write stamp instead of a
        blank slate (see :meth:`with_checkpoint`).
    faults:
        Optional fault-injection plan for the worker loop (used by the
        crash/restart test harness): ``{"exit_before_writes": N}`` kills
        the worker on *receiving* its N-th write batch without applying
        it; ``{"exit_after_writes": N}`` kills it after *applying* the
        N-th batch but before acknowledging — the applied-but-unacked
        window a real crash exposes.  ``None`` (default) disables both.
    shm:
        Shared-memory transport wiring, or ``None`` (queue transport).
        A dict ``{"ring": ingress ring segment name, "store": value
        store segment name}``: the worker attaches the ring, hosts its
        value columns in the named shared segment (created on first
        boot, adopted on restart), and publishes its applied watermark
        through the ring header.  Names are allocated by the front-end,
        which also owns crash-safe unlinking.
    merge_after:
        Highest batch number the shm worker must apply **batch-exact**
        (no consumer-side merging).  ``restart_shard`` sets this to the
        redo log's high-water mark: replayed batches then re-derive
        notifications under exactly the per-batch write stamps the
        pre-crash epoch delivered, so the front-end's stamp-keyed replay
        filter suppresses precisely the duplicates and nothing else.
        Batches beyond it are fresh traffic and free to merge.
    binary_notices:
        When true, changed-ego reports for watched egos travel as
        columnar :class:`~repro.serve.frames.ChangeFrame` replies (one
        row per changed ego; subscriber fan-out happens front-side)
        whenever the batch's egos/values pass the packing gate; the
        per-subscriber notice list stays the fallback.
    metrics:
        Whether the shard keeps a live metrics registry (apply/recompute
        histograms, engine op seconds — see ``repro.obs``).  With the shm
        transport the worker additionally publishes the registry into the
        front-end-named metrics slab (``spec.shm["metrics"]``) after each
        applied group, so the front-end scrapes it with zero IPC.
    """

    def __init__(
        self,
        graph,
        query: EgoQuery,
        shard_id: int,
        num_shards: int,
        readers: FrozenSet[NodeId],
        value_store: str = "auto",
        engine_kwargs: Optional[Dict[str, Any]] = None,
        checkpoint: Optional[ShardCheckpoint] = None,
        faults: Optional[Dict[str, int]] = None,
        shm: Optional[Dict[str, str]] = None,
        merge_after: int = 0,
        binary_notices: bool = False,
        metrics: bool = True,
    ) -> None:
        self.graph = graph
        # The user's predicate is already folded into ``readers`` by the
        # front-end's partition pass; strip it here so an unpicklable
        # callable (a lambda) never travels to the worker process.
        if query.predicate is not None:
            query = EgoQuery(
                aggregate=query.aggregate,
                window=query.window,
                neighborhood=query.neighborhood,
                predicate=None,
                mode=query.mode,
            )
        self.query = query
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.readers = frozenset(readers)
        self.value_store = value_store
        self.engine_kwargs = dict(engine_kwargs or {})
        self.checkpoint = checkpoint
        self.faults = faults
        self.shm = shm
        self.merge_after = merge_after
        self.binary_notices = binary_notices
        self.metrics = metrics

    def with_checkpoint(
        self, checkpoint: Optional[ShardCheckpoint]
    ) -> "ShardSpec":
        """A shallow copy of this spec that restores ``checkpoint`` on build.

        The graph and query are shared (they are immutable from the
        shard's point of view); only the restart state differs.  The
        front-end uses this to rebuild a dead worker from its last known
        checkpoint.
        """
        spec = copy.copy(self)
        spec.checkpoint = checkpoint
        return spec

    def shard_query(self) -> EgoQuery:
        """The deployment query restricted to this shard's readers."""
        return EgoQuery(
            aggregate=self.query.aggregate,
            window=self.query.window,
            neighborhood=self.query.neighborhood,
            predicate=_ReaderMembership(self.readers),
            mode=self.query.mode,
        )

    def build(self) -> "ShardHost":
        """Construct the live shard (engine + subscription state)."""
        return ShardHost(self)


class ShardHost:
    """One shard's engine plus its slice of the subscription registry.

    After every applied write batch the host diffs *exactly* the watched
    egos in the runtime's changed-reader report against their last
    notified values — so a quiet batch costs one empty report, a busy
    batch costs O(affected watched egos), and no batch ever scans the full
    subscriber table.
    """

    def __init__(self, spec: ShardSpec) -> None:
        from repro.core.engine import EAGrEngine
        from repro.core.statestore import resolve_value_store

        self.spec = spec
        self.shard_id = spec.shard_id
        value_store = spec.value_store
        shm_name = None
        if spec.shm is not None and resolve_value_store(
            spec.query.aggregate, "shared"
        ) == "shared":
            # Shm transport: host the value columns in the front-end-named
            # shared segment (created on first boot, adopted on restart)
            # so the front-end can answer push-reader reads zero-copy.
            value_store = "shared"
            shm_name = spec.shm["store"]
        self.engine = EAGrEngine(
            spec.graph,
            spec.shard_query(),
            value_store=value_store,
            shm_name=shm_name,
            **spec.engine_kwargs,
        )
        self._binary_notices = bool(getattr(spec, "binary_notices", False))
        # -- observability (repro.obs): a local slot-backed registry.
        # Disabled registries hand out shared no-op metrics, so the
        # metrics-off hot path pays one truthy check per batch.
        from repro.obs import MetricsRegistry, declare_shard_metrics

        self._metrics_on = bool(getattr(spec, "metrics", True))
        self.metrics_registry = MetricsRegistry(enabled=self._metrics_on)
        self.metrics = declare_shard_metrics(self.metrics_registry)
        self.engine.runtime.op_timing = self._metrics_on
        #: ego -> subscribers watching it (dict-as-ordered-set).
        self.watchers: Dict[NodeId, Dict[Hashable, None]] = {}
        #: ego -> last value delivered (or baselined at subscribe time).
        self.baseline: Dict[NodeId, Any] = {}
        #: Monotone count of write batches applied by *this* host instance.
        self.batches = 0
        #: Highest front-end batch number applied (checkpoint-restored, so
        #: a redo-log replay after restart skips what already landed).
        self.applied_through = 0
        self.notices_emitted = 0
        # -- windowed load accounting (shard_busy_fraction / _applied_eps).
        # Busy seconds accumulate per applied batch; the gauges refresh on
        # the next scrape/publish at least LOAD_WINDOW after the last one,
        # so they read as "fraction of the recent window spent applying".
        self._busy_window = 0.0
        self._applied_window = 0
        self._load_mark = _monotonic()
        if spec.checkpoint is not None:
            self._restore(spec.checkpoint)

    def _restore(self, ck: ShardCheckpoint) -> None:
        """Resume from a checkpoint: exact value state, watch registry,
        batch/stamp positions (see :class:`ShardCheckpoint`)."""
        if ck.shard_id != self.shard_id:
            raise ValueError(
                f"checkpoint for shard {ck.shard_id} cannot restore "
                f"shard {self.shard_id}"
            )
        runtime = self.engine.runtime
        # The engine's whole value state is derivable from the writer
        # window buffers: swap in the checkpointed ones and re-materialize.
        runtime.buffers.clear()
        runtime.buffers.update(ck.buffers)
        runtime.clock = ck.clock
        runtime.stamp = ck.stamp
        runtime.rebuild()
        self.applied_through = ck.applied_through
        self.watchers = {
            ego: dict.fromkeys(subs) for ego, subs in ck.watchers.items()
        }
        self.baseline = dict(ck.baseline)

    def checkpoint(self) -> ShardCheckpoint:
        """Snapshot this shard's restart state (pickle-isolated).

        The pickle round-trip both deep-copies (an in-process host keeps
        mutating its live buffers afterwards) and proves the checkpoint
        can cross a process boundary — the in-process executor therefore
        exercises the same serialization surface as the real deployment.
        """
        runtime = self.engine.runtime
        ck = ShardCheckpoint(
            shard_id=self.shard_id,
            applied_through=self.applied_through,
            stamp=runtime.stamp,
            clock=runtime.clock,
            buffers=dict(runtime.buffers),
            watchers={ego: tuple(subs) for ego, subs in self.watchers.items()},
            baseline=dict(self.baseline),
        )
        return pickle.loads(pickle.dumps(ck))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _guarded(self, fn, *args):
        """Run one engine operation under the shared store's seqlock.

        Any engine call can mutate the shared columns — writes scatter,
        reads advance time-window expiry, and *any* op may tick the
        adaptive controller into a pull→push flip that materializes a
        column outside the write path — so every engine touchpoint in
        this host routes through here.  The stamp goes odd for the
        duration and front-end zero-copy readers retry instead of
        observing a torn (or half-materialized) state.  The live store is
        re-checked in ``finally``: an engine recompile inside the call
        closes and replaces the store instance, and ending the bracket on
        the closed original would crash (while the replacement boots
        quiescent — stamp even — and needs no end).  No-op for
        process-private stores.
        """
        store = self.engine.runtime.values
        begin_batch = getattr(store, "begin_batch", None)
        if begin_batch is None:
            return fn(*args)
        begin_batch()
        try:
            return fn(*args)
        finally:
            if self.engine.runtime.values is store:
                store.end_batch()

    def apply_write_batch(
        self, batch_no: Optional[int], items: List[Tuple]
    ) -> Tuple[int, List[Tuple[Hashable, NodeId, Any, int]]]:
        """Apply one write batch; returns ``(count, notices)``.

        ``batch_no`` is the front-end's per-shard monotone batch number;
        a batch at or below :attr:`applied_through` was already absorbed
        (this request is a redo-log replay after a restart) and is
        skipped, making replays idempotent.  ``items`` is a triple list
        or a packed :class:`~repro.core.statestore.WriteFrame` (the
        engine dispatches on the type).  ``notices`` holds
        ``(subscriber, ego, value, stamp)`` for every watched ego whose
        aggregate value actually changed — candidates come from the
        O(affected) changed-reader report, a re-read (batched, pull
        subtrees shared) filters out cancellations, and ``stamp`` is the
        runtime's global write stamp (stable across restarts).  With
        ``spec.binary_notices`` the same changes pack into one
        :class:`~repro.serve.frames.ChangeFrame` instead (one row per
        changed ego; the front-end fans out to subscribers) whenever the
        egos/values pass the packing gate.
        """
        if batch_no is not None and batch_no <= self.applied_through:
            return 0, []
        engine = self.engine
        metered = self._metrics_on
        if metered:
            # Recompiles swap the runtime instance; keep its op-timing
            # flag in lockstep (one attribute store per batch).
            engine.runtime.op_timing = True
            t0 = _monotonic()
        count = self._guarded(engine.write_batch, items)
        if metered:
            t1 = _monotonic()
            self.metrics["shard_apply_seconds"].observe(t1 - t0)
            self.metrics["shard_batches_applied"].inc()
            self.metrics["shard_writes_applied"].inc(count)
        if batch_no is not None:
            self.applied_through = batch_no
        self.batches += 1
        ingress = getattr(items, "ingress", None)
        try:
            watchers = self.watchers
            if not watchers:
                # Nobody is listening: consume the pending changed-writer set
                # (keeping it bounded) without compiling reader closures.
                engine.runtime.pop_changed_writers()
                return count, []
            stamp, changed = engine.changed_report()
            candidates = [node for node in changed if node in watchers]
            if not candidates:
                return count, []
            pairs: List[Tuple[NodeId, Any]] = []
            baseline = self.baseline
            for node, value in zip(
                candidates, self._guarded(engine.read_batch, candidates)
            ):
                if value == baseline.get(node, _MISSING):
                    continue
                baseline[node] = value
                pairs.append((node, value))
            if not pairs:
                return count, []
            if self._binary_notices:
                frame = self._change_frame(pairs, stamp, ingress)
                if frame is not None:
                    self.notices_emitted += len(frame)
                    if metered:
                        self.metrics["shard_notices_emitted"].inc(len(frame))
                    return count, frame
            notices: List[Tuple[Hashable, NodeId, Any, int]] = []
            for node, value in pairs:
                for subscriber in watchers[node]:
                    notices.append((subscriber, node, value, stamp))
            self.notices_emitted += len(notices)
            if metered:
                self.metrics["shard_notices_emitted"].inc(len(notices))
            return count, notices
        finally:
            if metered:
                # Everything after the scatter — change diffing, the
                # filtering re-read, notice/frame packing — is recompute
                # + egress work.
                end = _monotonic()
                self.metrics["shard_recompute_seconds"].observe(end - t1)
                self._busy_window += end - t0
                self._applied_window += count

    @staticmethod
    def _change_frame(
        pairs: List[Tuple[NodeId, Any]], stamp: int, ingress: Optional[float] = None
    ):
        """Pack changed ``(ego, value)`` pairs, or ``None`` to fall back
        (same lossless gate as the ingress frames: int egos, float
        values).  ``ingress`` rides along so the front-end can close the
        write→notify latency loop."""
        np = _frames._np
        if np is None:
            return None
        for node, value in pairs:
            if type(node) is not int or not isinstance(value, float):
                return None
        egos = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
        values = np.fromiter(
            (p[1] for p in pairs), dtype=np.float64, count=len(pairs)
        )
        return _frames.ChangeFrame(egos, values, stamp, ingress=ingress)

    def apply_write_group(
        self, group: List[Tuple[Optional[int], List[Tuple]]]
    ) -> Tuple[int, List[Tuple[Hashable, NodeId, Any, int]]]:
        """Apply several numbered batches as **one** engine batch.

        The shm worker's consumer-side coalescing: already-applied batch
        numbers are skipped per entry (replay idempotency at the same
        granularity as :meth:`apply_write_batch`), the survivors apply as
        a single merged batch acknowledged at the newest number, and the
        runtime's global write stamp is advanced by the group size so it
        stays in lockstep with batch-at-a-time application — a re-derived
        notification after a crash must never stamp *below* the stamp a
        pre-crash epoch delivered for a later batch, or the front-end's
        replay filter would suppress a genuinely new value.
        """
        live = [
            (batch_no, items)
            for batch_no, items in group
            if batch_no is None or batch_no > self.applied_through
        ]
        if not live:
            return 0, []
        if len(live) == 1:
            return self.apply_write_batch(live[0][0], live[0][1])
        # An all-frame run concatenates columnar (array concat, no per-row
        # objects); mixed groups materialize into a plain list.
        merged = _frames.merge_items([items for _batch_no, items in live])
        self.engine.runtime.stamp += len(live) - 1
        self.metrics["shard_groups_merged"].inc()
        return self.apply_write_batch(live[-1][0], merged)

    def subscribe(
        self, subscriber: Hashable, nodes: List[NodeId]
    ) -> Tuple[Dict[NodeId, Any], int]:
        """Watch ``nodes`` for ``subscriber``; returns ``(snapshot, stamp)``.

        The baseline equals the current value, so notifications fire
        exactly for changes *after* the subscription (no spurious initial
        delivery).  ``stamp`` is the runtime's current global write stamp
        — the front-end seeds its per-ego replay filter with it, so a
        post-crash redo replay of batches that predate this subscription
        is never delivered to the new subscriber.
        """
        snapshot: Dict[NodeId, Any] = {}
        fresh = [node for node in nodes if node not in self.baseline]
        if fresh:
            for node, value in zip(
                fresh, self._guarded(self.engine.read_batch, fresh)
            ):
                self.baseline[node] = value
        for node in nodes:
            self.watchers.setdefault(node, {})[subscriber] = None
            snapshot[node] = self.baseline[node]
        return snapshot, self.engine.runtime.stamp

    def unsubscribe(
        self, subscriber: Hashable, nodes: Optional[List[NodeId]] = None
    ) -> int:
        """Stop watching ``nodes`` (``None``: everything); returns removals."""
        targets = list(self.watchers) if nodes is None else nodes
        removed = 0
        for node in targets:
            watching = self.watchers.get(node)
            if watching is not None and watching.pop(subscriber, _MISSING) is not _MISSING:
                removed += 1
                if not watching:
                    del self.watchers[node]
                    self.baseline.pop(node, None)
        return removed

    def handles(self) -> Tuple[Optional[str], Dict[NodeId, Tuple[int, bool]]]:
        """Zero-copy read map: ``(store segment name, {node: (handle,
        is_push)})``.

        ``is_push`` reflects the decision at map time; the front-end
        treats it as advisory — an adaptively flipped-to-pull node shows
        up cleared in the shared mask and falls back to ``OP_READ``.
        """
        store = self.engine.runtime.values
        name = store.name if store.backend == "shared" else None
        overlay = self.engine.overlay
        decisions = overlay.decisions
        from repro.core.overlay import Decision

        return name, {
            node: (handle, decisions[handle] is Decision.PUSH)
            for node, handle in overlay.reader_of.items()
        }

    def metrics_values(self):
        """The registry's flat value array, engine gauges refreshed.

        This is what the shm worker publishes into its metrics slab and
        what ``stats()`` carries for the queue transport — one schema
        (``repro.obs.schema.SHARD_METRICS``) either way.
        """
        counters = self.engine.counters
        self.metrics["shard_engine_write_seconds"].set(counters.write_seconds)
        self.metrics["shard_engine_read_seconds"].set(counters.read_seconds)
        now = _monotonic()
        window = now - self._load_mark
        if window >= LOAD_WINDOW:
            self.metrics["shard_busy_fraction"].set(
                min(1.0, self._busy_window / window)
            )
            self.metrics["shard_applied_eps"].set(self._applied_window / window)
            self._busy_window = 0.0
            self._applied_window = 0
            self._load_mark = now
        return self.metrics_registry.values_snapshot()

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot (counters, backend, registry sizes)."""
        counters = self.engine.counters
        return {
            "shard": self.shard_id,
            "readers": len(self.engine.overlay.reader_of),
            "batches": self.batches,
            "writes": counters.writes,
            "reads": counters.reads,
            "push_ops": counters.push_ops,
            "pull_ops": counters.pull_ops,
            "watched_egos": len(self.watchers),
            "notices_emitted": self.notices_emitted,
            "value_store_backend": self.engine.value_store_backend,
            # Same flat layout as the shm slab (SHARD_METRICS schema):
            # the queue transport's shard-metrics carrier.
            "metrics_values": (
                list(self.metrics_values()) if self._metrics_on else None
            ),
        }

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def handle(self, request: Tuple) -> Tuple:
        """Map one request tuple to one reply tuple (never raises)."""
        op = request[0]
        seq = request[1]
        try:
            if op == OP_WRITE:
                count, notices = self.apply_write_batch(request[2], request[3])
                return (R_WRITE, seq, count, notices)
            if op == OP_READ:
                return (R_OK, seq, self._guarded(self.engine.read_batch, request[2]))
            if op == OP_SUBSCRIBE:
                return (R_OK, seq, self.subscribe(request[2], request[3]))
            if op == OP_UNSUBSCRIBE:
                return (R_OK, seq, self.unsubscribe(request[2], request[3]))
            if op == OP_DRAIN:
                return (R_OK, seq, self.batches)
            if op == OP_STATS:
                return (R_OK, seq, self.stats())
            if op == OP_CHECKPOINT:
                return (R_OK, seq, self.checkpoint())
            if op == OP_HANDLES:
                return (R_OK, seq, self.handles())
            if op == OP_STOP:
                return (R_STOPPED, seq, None)
            return (R_ERR, seq, f"unknown op {op!r}")
        except Exception as error:  # noqa: BLE001 - reply, don't kill the loop
            return (R_ERR, seq, f"{type(error).__name__}: {error}")


#: Sentinel distinguishing "no baseline yet" from a stored None value.
_MISSING = object()


def shard_worker(spec: ShardSpec, requests, replies) -> None:
    """Process entry point: pump ``requests`` through a fresh shard host.

    Spawn-safe: everything arrives via the pickled ``spec`` and the two
    queues.  The loop is single-threaded, so request order *is* apply
    order — the front-end's FIFO queues give per-shard read-your-writes.
    Exits after acknowledging ``OP_STOP`` (the ``R_STOPPED`` reply also
    tells the front-end's drainer thread to finish).

    When ``spec.faults`` is set (crash/restart tests), the worker kills
    itself at the configured deterministic point: on *receiving* the N-th
    write batch (``exit_before_writes``, batch lost unapplied) or after
    *applying* it but before the reply leaves (``exit_after_writes``, the
    applied-but-unacknowledged window).  ``os._exit`` skips every
    finalizer — as close to ``kill -9`` as the worker can do to itself —
    so recovery is exercised against a genuinely unclean death.
    """
    host = spec.build()
    faults = spec.faults or {}
    exit_before = faults.get("exit_before_writes")
    exit_after = faults.get("exit_after_writes")
    writes_seen = 0
    while True:
        request = requests.get()
        if request[0] == OP_WRITE:
            writes_seen += 1
            if exit_before is not None and writes_seen >= exit_before:
                import os

                os._exit(17)
        reply = host.handle(request)
        if (
            request[0] == OP_WRITE
            and exit_after is not None
            and writes_seen >= exit_after
        ):
            import os

            os._exit(17)
        replies.put(reply)
        if reply[0] == R_STOPPED:
            break


def shard_worker_shm(spec: ShardSpec, ring_name: str, replies, doorbell) -> None:
    """Shm-transport process entry point: pump the ingress ring.

    Identical protocol semantics to :func:`shard_worker` — requests are
    the same tuples, handled by the same host, in the same FIFO order
    (the ring is single-producer/single-consumer) — with three transport
    differences:

    * requests arrive as codec-tagged frames popped from the shard's
      shared ingress ring (:class:`~repro.serve.shm.ShmRing`) instead of
      a bounded ``mp.Queue``: packed write batches decode with one
      ``np.frombuffer`` view over the frame bytes
      (:func:`repro.serve.frames.decode`), everything else unpickles;
    * after every applied write batch the worker publishes ``(applied
      batch_no, runtime write stamp)`` through the ring header — the
      front-end's read-your-writes watermark — and **skips** the
      ``R_WRITE`` reply unless it carries subscription notices (errors
      always reply);
    * the host's value columns live in the spec's named shared segment
      (see :class:`ShardSpec`), bracketed by the store's seqlock around
      each batch so front-end zero-copy reads never observe a torn
      scatter.

    ``doorbell`` is the wake-up pipe: an empty ring parks the worker in a
    kernel block on it (no busy polling — a spinning worker would steal
    the cycles the front-end needs to produce), and the executor rings it
    exactly on the ring's empty→non-empty transitions, so a burst costs
    one syscall at its head and none while frames keep flowing.

    **Consumer-side coalescing**: when the worker falls behind, several
    write frames wait in the ring; they are drained and applied as *one*
    merged engine batch (replay-skipped per frame, acknowledged at the
    last frame's ``batch_no``), so the per-batch fixed costs — unpickle,
    plan dispatch, scatter setup, change diffing — amortize exactly when
    they matter.  This mirrors the producer-side outbox coalescing a
    bounded queue forces, but lives where the shm transport's slack is.
    A worker that keeps up applies single batches (cheap anyway).

    Kill-point fault injection disables merging so batch counting stays
    frame-exact, and counts ring write frames exactly as the queue worker
    counts queue ones — the crash/restart harness drives both transports
    through one dial.
    """
    from repro.serve.frames import decode
    from repro.serve.shm import ShmRing

    ring = ShmRing(ring_name, create=False)
    host = spec.build()
    runtime = host.engine.runtime
    # Metrics slab: front-end-created segment this worker bulk-publishes
    # its registry values into after every applied group (and before
    # parking), so the front-end scrapes shard metrics with zero IPC.
    slab = None
    slab_name = (spec.shm or {}).get("metrics")
    if slab_name is not None and host._metrics_on:
        from repro.obs import MetricsSlab

        try:
            slab = MetricsSlab.attach(slab_name, host.metrics_registry.n_slots)
        except Exception:
            slab = None  # scrape degrades to OP_STATS; never kill the worker
    metrics = host.metrics

    def publish_metrics():
        if slab is not None:
            slab.publish(host.metrics_values())

    # The published watermark is *processed-through*, not applied-through:
    # it advances past failed (R_ERR) and replay-skipped batches too.  Its
    # one consumer is the front-end's read barrier, and a batch that was
    # processed-but-not-applied has nothing further for a read to wait on
    # — were the watermark pinned to applied_through, one poisoned batch
    # would wedge every later zero-copy read until the reply timeout.
    processed = host.applied_through
    ring.publish_applied(processed, runtime.stamp)
    faults = spec.faults or {}
    exit_before = faults.get("exit_before_writes")
    exit_after = faults.get("exit_after_writes")
    merge_writes = not faults
    merge_floor = spec.merge_after
    merge_cap = 128
    writes_seen = 0
    while True:
        frame = ring.try_pop()
        if frame is None:
            # Park on the doorbell: announce first, re-check the ring
            # (closing the producer's push-then-check race), then block.
            ring.set_waiting(True)
            frame = ring.try_pop()
            if frame is None:
                metrics["shard_parks"].inc()
                publish_metrics()  # idle worker: keep the scrape fresh
                try:
                    if doorbell.poll(0.5):
                        metrics["shard_doorbell_wakeups"].inc()
                        while doorbell.poll(0):  # swallow queued rings
                            doorbell.recv_bytes()
                except (EOFError, OSError):
                    pass  # sender closed: frames (incl. OP_STOP) still drain
                ring.set_waiting(False)
                continue
            ring.set_waiting(False)
        request = decode(frame)
        op = request[0]
        if op == OP_WRITE:
            writes_seen += 1
            if exit_before is not None and writes_seen >= exit_before:
                import os

                os._exit(17)
            if merge_writes and (request[2] is None or request[2] > merge_floor):
                # Drain whatever other write frames already wait and fold
                # them into this apply; a trailing non-write frame is
                # remembered and handled right after (FIFO preserved).
                # (Redo-replay frames — batch_no <= merge_floor — never
                # get here: they take the batch-exact path below so their
                # re-derived notification stamps match the pre-crash
                # epoch's exactly.)
                group = [request]
                follow_up = None
                while len(group) < merge_cap:
                    extra = ring.try_pop()
                    if extra is None:
                        break
                    extra_request = decode(extra)
                    if extra_request[0] == OP_WRITE:
                        group.append(extra_request)
                    else:
                        follow_up = extra_request
                        break
                try:
                    count, notices = host.apply_write_group(
                        [(req[2], req[3]) for req in group]
                    )
                    reply = (R_WRITE, group[-1][1], count, notices)
                except Exception as error:  # noqa: BLE001 - reply, don't die
                    reply = (
                        R_ERR,
                        group[-1][1],
                        f"{type(error).__name__}: {error}",
                    )
                last_no = group[-1][2]
                if last_no is not None and last_no > processed:
                    processed = last_no
                ring.publish_applied(processed, runtime.stamp)
                publish_metrics()
                if reply[0] == R_ERR or reply[3]:
                    replies.put(reply)
                if follow_up is None:
                    continue
                request = follow_up
                op = request[0]
        if op == OP_WRITE:  # batch-exact path (fault-armed or redo replay)
            reply = host.handle(request)
            if exit_after is not None and writes_seen >= exit_after:
                import os

                os._exit(17)  # applied, but neither watermark nor reply left
            batch_no = request[2]
            if batch_no is not None and batch_no > processed:
                processed = batch_no
            ring.publish_applied(processed, runtime.stamp)
            publish_metrics()
            if reply[0] == R_WRITE and not reply[3]:
                continue  # watermark published; empty ack saved
            replies.put(reply)
            continue
        reply = host.handle(request)
        replies.put(reply)
        if reply[0] == R_STOPPED:
            break
    # Clean exit: drop the shm views *before* interpreter teardown, or
    # SharedMemory.__del__ trips over the still-exported numpy buffers
    # ("cannot close exported pointers exist" noise on stderr).  The
    # segments themselves survive — unlinking is the front-end's job.
    store_close = getattr(host.engine.runtime.values, "close", None)
    if store_close is not None:
        store_close()
    if slab is not None:
        slab.close()
    ring.close()
