"""Durable, resumable per-subscriber notification logs.

The serving layer's live delivery is at-least-once and best-effort: a
subscriber that disconnects (or whose process dies) loses whatever was
sitting in its in-memory queue.  :class:`NotificationLog` closes that gap.
The front-end appends every stamped :class:`~repro.serve.messages.Notification`
to the subscriber's log *before* offering it to the live queue, so a client
that reconnects with ``resume_from=N`` can replay the suffix with stamps
``> N`` — the original stamps, exactly once, in order — and then splice
seamlessly into live delivery.

Design:

* **Bounded ring.**  The in-memory tail keeps at most ``capacity`` entries;
  appending beyond that evicts the oldest.  Eviction is *tracked*: a
  ``resume_from`` older than the oldest retained stamp raises
  :class:`ResumeGapError` instead of silently replaying a gapped suffix.
  Acknowledged prefixes (:meth:`truncate`) free space early.
* **Optional disk backing.**  With a ``path`` the log is also an append-only
  file of pickled frames and survives process restart (:meth:`open` /
  construction with an existing file reloads it).  Appends are flushed per
  record; a crash can lose at most the partially-written tail frame, which
  the loader detects and drops.  The file self-compacts: once enough append
  frames accumulate the whole state is rewritten atomically
  (write-to-temp + ``os.replace``) so the file stays proportional to
  ``capacity``, not to lifetime traffic.

Frames on disk are ``("C", evicted_through, entries)`` compaction snapshots,
``("A", entry)`` appends, and ``("T", upto)`` truncation markers; loading
replays them in order.  Entries are whatever picklable record carries a
monotone integer ``stamp`` attribute — in the serving layer,
:class:`~repro.serve.messages.Notification` instances on the pickle data
plane, or columnar :class:`~repro.serve.frames.NoteFrame` batches on the
binary one.  A frame entry carries a contiguous stamp *run*: its
``stamp`` attribute is the run's **last** stamp (the monotone journal
key), ``first_stamp`` its first, ``len()`` its notification count, and
``after(s)`` slices a suffix — capacity, eviction, truncation and replay
all count and cut **notifications**, not entries, so the resume window
is the same number of notifications whichever codec filled it.  A frame
entry pickles to its raw record bytes (``__reduce__``), so the disk
format is unchanged — the same three frame kinds, cheaper payloads.
"""

from __future__ import annotations

import io
import os
import pickle
from collections import deque
from typing import Any, Deque, List, Optional


def _count(entry: Any) -> int:
    """Notifications carried by one entry (frame batches carry many)."""
    return entry.__len__() if hasattr(entry, "__len__") else 1


def _drop_through(entries: Deque[Any], upto: int) -> int:
    """Drop every notification with stamp ``<= upto`` from ``entries``.

    Whole entries pop off the left; a frame straddling ``upto`` is
    replaced by its retained suffix (stamps are contiguous within a
    frame, so the cut is arithmetic).  Returns the number of
    notifications dropped.
    """
    dropped = 0
    while entries and entries[0].stamp <= upto:
        dropped += _count(entries.popleft())
    if entries:
        head = entries[0]
        if getattr(head, "first_stamp", head.stamp) <= upto:
            kept = head.after(upto)
            dropped += _count(head) - _count(kept)
            entries[0] = kept
    return dropped


def _evict_excess(entries: Deque[Any], total: int, capacity: int, evicted: int):
    """Evict the oldest notifications until ``total <= capacity``.

    Frames evict at notification granularity — a frame holding more than
    the excess sheds an acknowledged-by-overflow *prefix* and stays — so
    the resume window always retains exactly the newest ``capacity``
    notifications, byte-identical to the per-object plane.  Returns the
    updated ``(total, evicted_through)``.
    """
    while total > capacity and entries:
        head = entries[0]
        excess = total - capacity
        carried = _count(head)
        if carried <= excess:
            entries.popleft()
            total -= carried
            evicted = head.stamp
        else:
            first = getattr(head, "first_stamp", head.stamp)
            cut = first + excess - 1
            entries[0] = head.after(cut)
            total -= excess
            evicted = cut
    return total, evicted


class ResumeGapError(RuntimeError):
    """``resume_from`` predates the oldest retained log entry.

    Raised instead of silently replaying a sequence with a hole in it:
    the caller asked for every notification after stamp ``N``, but entries
    ``N+1 .. first_retained-1`` have been evicted (ring overflow) or
    acknowledged away (:meth:`NotificationLog.truncate`).  The subscriber
    must re-baseline (fresh ``subscribe`` and snapshot) instead of
    resuming.
    """


class NotificationLog:
    """Bounded, optionally disk-backed ring log of stamped notifications.

    Parameters
    ----------
    capacity:
        Maximum retained entries; appending the ``capacity+1``-th entry
        evicts the oldest (and moves the resumable horizon forward).
    path:
        Optional file path for durability.  If the file exists its frames
        are replayed to restore state (surviving process restart); the
        file is created otherwise.
    compact_every:
        Rewrite the backing file after this many append/truncate frames
        (default ``2 * capacity``); ignored when ``path`` is ``None``.
    """

    def __init__(
        self,
        capacity: int = 4096,
        path: Optional[str] = None,
        compact_every: Optional[int] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self.path = path
        self._entries: Deque[Any] = deque()
        #: Retained notifications (>= len(self._entries): frames batch).
        self._note_total = 0
        #: Highest stamp no longer retained (0: nothing ever evicted).
        self.evicted_through = 0
        #: Notifications evicted by capacity pressure this process
        #: lifetime (``truncate`` — an intentional ack release — is not
        #: an eviction and does not count).
        self.evictions = 0
        self._compact_every = compact_every or 2 * capacity
        self._frames_since_compact = 0
        self._file: Optional[io.BufferedWriter] = None
        if path is not None:
            if os.path.exists(path):
                self._load(path)
            self._file = open(path, "ab")

    # ------------------------------------------------------------------
    # core ring operations
    # ------------------------------------------------------------------

    @property
    def last_stamp(self) -> int:
        """Stamp of the newest entry (``evicted_through`` when empty)."""
        return self._entries[-1].stamp if self._entries else self.evicted_through

    @property
    def first_stamp(self) -> int:
        """Oldest retained stamp (0 when empty and pristine)."""
        if not self._entries:
            return self.evicted_through
        head = self._entries[0]
        return getattr(head, "first_stamp", head.stamp)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resumable_from(self) -> int:
        """The oldest ``resume_from`` that :meth:`replay` accepts — the
        eviction horizon.  A client holding a token ``>= resumable_from``
        (and ``<= last_stamp``) can reconnect gap-free; anything older
        raises :class:`ResumeGapError` and must re-baseline."""
        return self.evicted_through

    @property
    def note_count(self) -> int:
        """Retained notifications (what :attr:`capacity` bounds)."""
        return self._note_total

    def entries(self) -> List[Any]:
        """Every retained entry, oldest first (a copy, safe to keep).

        WAL cold-restart recovery walks these to rehydrate the
        front-end's per-ego replay filter: on that path the redo replay
        reproduces pre-crash shard stamps exactly, so the recorded
        ``batch`` tags are valid suppression thresholds in the new
        process (unlike a non-WAL reboot, where shards restart their
        stamps from zero).
        """
        return list(self._entries)

    def append(self, entry: Any) -> None:
        """Record ``entry`` (its stamps must all exceed :attr:`last_stamp`)."""
        if getattr(entry, "first_stamp", entry.stamp) <= self.last_stamp:
            raise ValueError(
                f"non-monotone journal append: stamp {entry.stamp} after "
                f"{self.last_stamp}"
            )
        self._entries.append(entry)
        before = self.evicted_through
        self._note_total, self.evicted_through = _evict_excess(
            self._entries,
            self._note_total + _count(entry),
            self.capacity,
            self.evicted_through,
        )
        if self.evicted_through > before:
            # Stamps are per-note contiguous, so the horizon delta *is*
            # the number of notifications evicted.
            self.evictions += self.evicted_through - before
        self._write_frame(("A", entry))

    def replay(self, resume_from: int) -> List[Any]:
        """Every retained entry with stamp ``> resume_from``, in order.

        Raises :class:`ResumeGapError` when entries in
        ``(resume_from, first retained stamp)`` have been evicted — the
        replay could not be gap-free.
        """
        if resume_from < self.evicted_through:
            raise ResumeGapError(
                f"cannot resume from stamp {resume_from}: entries through "
                f"stamp {self.evicted_through} have been evicted "
                "(oldest retained: "
                f"{self._entries[0].stamp if self._entries else 'none'})"
            )
        if resume_from > self.last_stamp:
            # The log has never seen this stamp: the client is ahead of the
            # journal (e.g. the server lost an in-memory log in a restart).
            # Replaying would let stamps regress below the client's mark.
            raise ResumeGapError(
                f"cannot resume from stamp {resume_from}: the journal's "
                f"last stamp is {self.last_stamp}"
            )
        out: List[Any] = []
        for entry in self._entries:
            if entry.stamp <= resume_from:
                continue
            if getattr(entry, "first_stamp", entry.stamp) <= resume_from:
                # Frame straddling the resume point: replay its suffix only.
                entry = entry.after(resume_from)
            out.append(entry)
        return out

    def truncate(self, upto: int) -> int:
        """Drop notifications with stamp ``<= upto`` (an acknowledged prefix).

        Returns the number of notifications dropped (equal to entries
        dropped on the pickle plane; frame entries straddling ``upto``
        shed their acknowledged prefix and stay).  Moves the resumable
        horizon: a later ``resume_from < upto`` raises
        :class:`ResumeGapError`.
        """
        dropped = _drop_through(self._entries, upto)
        self._note_total -= dropped
        moved = upto > self.evicted_through
        if moved:
            self.evicted_through = upto
        if dropped or moved:
            self._write_frame(("T", upto))
        return dropped

    # ------------------------------------------------------------------
    # disk backing
    # ------------------------------------------------------------------

    def _load(self, path: str) -> None:
        """Replay frames from ``path``; a torn tail frame is dropped.

        The torn bytes are also truncated away, so frames appended after
        recovery extend the good prefix instead of hiding behind garbage
        that the *next* reload would stop at (silently losing them).
        """
        entries: Deque[Any] = deque()
        evicted = 0
        total = 0
        torn_at: Optional[int] = None
        with open(path, "rb") as fh:
            while True:
                offset = fh.tell()
                try:
                    frame = pickle.load(fh)
                except EOFError:
                    break
                except (pickle.UnpicklingError, AttributeError, ValueError):
                    # Torn tail from a crash mid-append: everything before
                    # it was flushed whole; drop the tail, keep the prefix.
                    torn_at = offset
                    break
                kind = frame[0]
                if kind == "C":
                    evicted = frame[1]
                    entries = deque(frame[2])
                    total = sum(_count(e) for e in entries)
                elif kind == "A":
                    entries.append(frame[1])
                    total, evicted = _evict_excess(
                        entries, total + _count(frame[1]), self.capacity, evicted
                    )
                elif kind == "T":
                    upto = frame[1]
                    total -= _drop_through(entries, upto)
                    evicted = max(evicted, upto)
        if torn_at is not None:
            with open(path, "r+b") as fh:
                fh.truncate(torn_at)
        self._entries = entries
        self._note_total = total
        self.evicted_through = evicted

    def _write_frame(self, frame) -> None:
        if self._file is None:
            return
        pickle.dump(frame, self._file, protocol=pickle.HIGHEST_PROTOCOL)
        self._file.flush()
        self._frames_since_compact += 1
        if self._frames_since_compact >= self._compact_every:
            self.compact()

    def compact(self) -> None:
        """Atomically rewrite the backing file as one snapshot frame."""
        if self._file is None or self.path is None:
            return
        self._file.close()
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(
                ("C", self.evicted_through, list(self._entries)),
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._file = open(self.path, "ab")
        self._frames_since_compact = 0

    def close(self) -> None:
        """Flush and close the backing file (idempotent; ring stays usable)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NotificationLog(entries={len(self._entries)}, "
            f"stamps=({self.first_stamp}, {self.last_stamp}], "
            f"evicted_through={self.evicted_through}, "
            f"path={self.path!r})"
        )


def subscriber_log_path(directory: str, subscriber) -> str:
    """A stable, filesystem-safe per-subscriber file name under ``directory``.

    Subscriber ids are arbitrary hashables; the name embeds a readable
    (sanitized, truncated) prefix plus a stable digest of the full repr so
    distinct subscribers never collide.
    """
    import hashlib

    text = repr(subscriber)
    digest = hashlib.sha1(text.encode("utf-8", "replace")).hexdigest()[:12]
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in text)[:40]
    return os.path.join(directory, f"sub-{safe}-{digest}.journal")
