"""Binary frame codec for the serve data plane.

The serving layer's hot path moves two kinds of payloads: write batches
(front-end → shard, through the shm ingress ring or the queue executor)
and change notifications (shard → front-end → subscriber).  Both default
to *binary frames* — raw numpy record bytes behind tiny fixed headers —
so a steady-state columnar batch flows client → ring → scatter →
notification → subscriber without a single ``pickle.dumps``/``loads``.

Wire format of a ring payload (the first byte always tags the codec):

* ``K_PICKLE`` (``0x00``): the remaining bytes are a pickled request
  tuple — the universal fallback carrying control ops (reads, drains,
  checkpoints, stop) and any write batch that fails the packing gate
  (non-``int`` node keys, non-``float`` values, heterogeneous rows).
* ``K_WRITE`` (``0x01``): a 40-byte header ``<B7xqqqd`` (kind, padding,
  ``seq``, ``batch_no`` with ``-1`` encoding ``None``, row count, and the
  front-end's monotonic ingress timestamp with ``0.0`` encoding ``None``
  — the T0 of the write→notify latency measurement) followed by the raw
  bytes of a
  :class:`~repro.core.statestore.WriteFrame` record array — decoded with
  one ``np.frombuffer`` view, zero per-row work.

Egress has no ring: change reports and journaled notifications travel as
:class:`ChangeFrame` / :class:`NoteFrame` objects whose pickling reduces
to their raw record bytes (``__reduce__``), so crossing an ``mp``
connection or entering the notification journal costs one buffer copy.
That residual framing (the queue transport's own pickling of a
bytes-carrying frame) is *below* the codec layer: the codec counters
exported by ``server_stats()`` count what this module chose, and the
steady-state columnar path chooses pickle exactly zero times.

Everything here degrades gracefully without numpy: the encode helpers
fall back to ``K_PICKLE`` and the frame classes simply go unused (the
server's packing gate never produces them).
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional, Sequence

from repro.core.statestore import WriteFrame, _np
from repro.serve.messages import OP_WRITE, Notification

# -- payload codec kinds (first byte of every ring payload) -----------------
K_PICKLE = 0
K_WRITE = 1

# -- gateway control kinds (first byte of a TCP wire payload) ----------------
# The network gateway (:mod:`repro.serve.gateway`) speaks length-prefixed
# frames whose payloads reuse this codec: ``K_WRITE``/``K_PICKLE`` carry
# write batches exactly as the ring does (the request id rides the header's
# ``seq`` slot), and the kinds below carry the control plane.  Control
# bodies are pickled tuples — the gateway is a trusted-perimeter edge (same
# trust domain as the shard transports), not an internet-facing protocol.
K_HELLO = 2  # client -> gateway: (request_id, client_id)
K_SUBSCRIBE = 3  # client -> gateway: (request_id, subscriber, nodes, resume_from)
K_ACK = 4  # client -> gateway: (request_id, subscriber, stamp)
K_ERROR = 5  # gateway -> client: (request_id, error_kind, message, subscriber)
K_OK = 6  # gateway -> client: (request_id, result)
K_READ = 7  # client -> gateway: (request_id, nodes)
K_NOTES = 8  # gateway -> client: (subscriber, NoteFrame | Notification)

#: Every wire frame is ``uint32 LE payload length | payload``.
LENGTH_PREFIX = struct.Struct("<I")

#: Sanity bound on a single wire frame (a corrupt or hostile length
#: prefix must not trigger a giant allocation).
MAX_FRAME_BYTES = 1 << 26

_K_PICKLE_BYTE = bytes([K_PICKLE])

#: Header of a ``K_WRITE`` payload: kind, 7 pad bytes, seq, batch_no
#: (``-1`` encodes ``None``: a redo replay below the merge floor), count,
#: ingress timestamp (``0.0`` encodes ``None``: an un-stamped frame).
WRITE_HEADER = struct.Struct("<B7xqqqd")

#: Record layout of a :class:`NoteFrame` (one row per notification).
NOTE_DTYPE = (
    None
    if _np is None
    else _np.dtype(
        [("ego", "<i8"), ("value", "<f8"), ("stamp", "<i8"), ("batch", "<i8")]
    )
)


# ---------------------------------------------------------------------------
# ring payload codec
# ---------------------------------------------------------------------------


def encode_pickle(request: Any) -> bytes:
    """Pack any request tuple as a ``K_PICKLE`` payload (the fallback)."""
    return _K_PICKLE_BYTE + pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)


def encode_write(seq: int, batch_no: Optional[int], frame: WriteFrame) -> bytes:
    """Pack an ``OP_WRITE`` carrying a :class:`WriteFrame` as ``K_WRITE``."""
    ingress = frame.ingress
    return (
        WRITE_HEADER.pack(
            K_WRITE,
            seq,
            -1 if batch_no is None else batch_no,
            len(frame),
            0.0 if ingress is None else ingress,
        )
        + frame.records.tobytes()
    )


def decode(payload: bytes) -> Any:
    """One ring payload back into a request tuple.

    ``K_WRITE`` payloads decode with a single ``np.frombuffer`` over the
    received bytes (the ring pop hands the consumer an owned copy, so the
    views stay valid for the request's lifetime); the items slot of the
    returned tuple is a :class:`WriteFrame` the shard scatters from
    directly.
    """
    if payload[0] == K_WRITE:
        _kind, seq, batch_no, count, ingress = WRITE_HEADER.unpack_from(payload)
        records = _np.frombuffer(
            payload, dtype=WriteFrame.dtype, count=count, offset=WRITE_HEADER.size
        )
        frame = WriteFrame(records, ingress=None if ingress == 0.0 else ingress)
        return (OP_WRITE, seq, None if batch_no < 0 else batch_no, frame)
    return pickle.loads(memoryview(payload)[1:])


# ---------------------------------------------------------------------------
# gateway control-frame codec
# ---------------------------------------------------------------------------


def encode_control(kind: int, body: Any) -> bytes:
    """Pack one gateway control frame: kind byte + pickled body tuple."""
    return bytes([kind]) + pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)


def decode_control(payload: bytes) -> Any:
    """The body tuple of a control payload (the kind byte is stripped;
    dispatch on ``payload[0]`` before calling this)."""
    return pickle.loads(memoryview(payload)[1:])


def frame_bytes(payload: bytes) -> bytes:
    """One complete wire frame: length prefix + payload."""
    return LENGTH_PREFIX.pack(len(payload)) + payload


# ---------------------------------------------------------------------------
# egress frames
# ---------------------------------------------------------------------------


def _changeframe_from_bytes(
    ego_bytes: bytes, value_bytes: bytes, batch: int, ingress: float = None
):
    return ChangeFrame(
        _np.frombuffer(ego_bytes, dtype=_np.int64),
        _np.frombuffer(value_bytes, dtype=_np.float64),
        batch,
        ingress=ingress,
    )


class ChangeFrame:
    """A shard's changed-ego report for one write batch, columnar.

    Replaces the per-object notice list in ``R_WRITE`` replies on the
    binary path: ``egos``/``values`` are parallel int64/float64 arrays of
    every *watched* ego whose finalized value changed, and ``batch`` is
    the shard runtime's global write stamp for the batch.  Subscriber
    fan-out happens front-side (the front-end keeps the ego → watchers
    reverse map), so the frame stays one row per changed ego no matter
    how many subscribers watch it.
    """

    __slots__ = ("egos", "values", "batch", "ingress")

    def __init__(self, egos, values, batch: int, ingress: Optional[float] = None) -> None:
        self.egos = egos
        self.values = values
        self.batch = batch
        #: The triggering write batch's front-end ingress timestamp,
        #: carried through the shard so the front-end can close the
        #: write→notify latency loop (``None`` on un-stamped batches).
        self.ingress = ingress

    def __len__(self) -> int:
        return len(self.egos)

    @property
    def nbytes(self) -> int:
        return self.egos.nbytes + self.values.nbytes

    def __reduce__(self):
        return (
            _changeframe_from_bytes,
            (self.egos.tobytes(), self.values.tobytes(), self.batch, self.ingress),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChangeFrame({len(self.egos)} egos, batch={self.batch})"


def _noteframe_from_bytes(subscriber, shard: int, data: bytes, ingress: float = None):
    return NoteFrame(
        subscriber, shard, _np.frombuffer(data, dtype=NOTE_DTYPE), ingress=ingress
    )


class NoteFrame:
    """A contiguous run of one subscriber's notifications, columnar.

    The binary counterpart of a list of
    :class:`~repro.serve.messages.Notification` objects: one record per
    notification (``ego``, finalized ``value``, per-subscriber delivery
    ``stamp``, shard ``batch`` tag), plus the subscriber and shard ids
    shared by every row.  Stamps within a frame are contiguous and the
    frame exposes ``.stamp`` (its *last* stamp) so the notification
    journal can treat it as one monotone entry; :meth:`after` slices a
    resume suffix and :meth:`upto` an acknowledged prefix without
    materializing objects.  Subscribers get the raw records from
    ``Subscription.poll_batch()`` and pay :meth:`notifications` only on
    demand.
    """

    __slots__ = ("subscriber", "shard", "records", "ingress")

    def __init__(
        self, subscriber, shard: int, records, ingress: Optional[float] = None
    ) -> None:
        self.subscriber = subscriber
        self.shard = shard
        self.records = records
        #: Ingress timestamp of the triggering write batch (``None`` on
        #: un-stamped frames — recovery replays, journal resumes from a
        #: prior process whose monotonic clock is meaningless here).
        self.ingress = ingress

    @classmethod
    def build(cls, subscriber, shard, egos, values, first_stamp, batch, ingress=None):
        """One frame from parallel ego/value arrays, stamping rows
        ``first_stamp, first_stamp+1, ...`` (the journal contract)."""
        records = _np.empty(len(egos), dtype=NOTE_DTYPE)
        records["ego"] = egos
        records["value"] = values
        records["stamp"] = _np.arange(
            first_stamp, first_stamp + len(egos), dtype=_np.int64
        )
        records["batch"] = batch
        return cls(subscriber, shard, records, ingress=ingress)

    # -- journal protocol ----------------------------------------------------

    @property
    def stamp(self) -> int:
        """The frame's *last* (highest) stamp — its journal-order key."""
        return int(self.records["stamp"][-1])

    @property
    def first_stamp(self) -> int:
        return int(self.records["stamp"][0])

    def __len__(self) -> int:
        return len(self.records)

    def after(self, stamp: int) -> Optional["NoteFrame"]:
        """The suffix with stamps ``> stamp`` (``None`` when empty)."""
        if self.first_stamp > stamp:
            return self
        if self.stamp <= stamp:
            return None
        # stamps are contiguous: the cut index is arithmetic, not a search
        return NoteFrame(
            self.subscriber,
            self.shard,
            self.records[stamp - self.first_stamp + 1 :],
            ingress=self.ingress,
        )

    def upto(self, stamp: int) -> Optional["NoteFrame"]:
        """The prefix with stamps ``<= stamp`` (``None`` when empty)."""
        if self.stamp <= stamp:
            return self
        if self.first_stamp > stamp:
            return None
        return NoteFrame(
            self.subscriber,
            self.shard,
            self.records[: stamp - self.first_stamp + 1],
            ingress=self.ingress,
        )

    # -- materialization (on demand only) ------------------------------------

    def notifications(self) -> List[Notification]:
        """The frame as :class:`Notification` objects (allocates)."""
        subscriber = self.subscriber
        shard = self.shard
        records = self.records
        return [
            Notification(subscriber, ego, value, stamp, shard, batch)
            for ego, value, stamp, batch in zip(
                records["ego"].tolist(),
                records["value"].tolist(),
                records["stamp"].tolist(),
                records["batch"].tolist(),
            )
        ]

    @property
    def nbytes(self) -> int:
        return self.records.nbytes

    def __reduce__(self):
        return (
            _noteframe_from_bytes,
            (self.subscriber, self.shard, self.records.tobytes(), self.ingress),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NoteFrame({self.subscriber!r}, shard={self.shard}, "
            f"stamps=[{self.first_stamp}..{self.stamp}])"
        )


# ---------------------------------------------------------------------------
# batch merging (shared by coalescing, WAL folding and the replica)
# ---------------------------------------------------------------------------


def merge_items(batches: Sequence) -> Any:
    """Concatenate write batches, staying columnar when possible.

    Each element is either a :class:`WriteFrame` or a list of triples;
    an all-frame run concatenates into one frame (array concat, no
    per-row objects), anything mixed materializes into a plain list —
    both shapes are valid ``OP_WRITE`` items.
    """
    if not batches:
        return []
    if all(batch.__class__ is WriteFrame for batch in batches):
        return WriteFrame.concat(list(batches))
    merged: List = []
    for batch in batches:
        if batch.__class__ is WriteFrame:
            merged.extend(batch.tolist())
        else:
            merged.extend(batch)
    return merged
