"""EAGrServer: the sharded front-end for continuous ego-centric queries.

The server partitions the reader space over shards (each a full EAGr
engine behind an executor — worker process or in-process), then serves
four verbs:

* :meth:`EAGrServer.write_batch` — multicast each write to the shards
  whose readers need it.  Writes land in per-shard *outboxes* and flush
  through the executor's bounded queue; when a shard is backed up, the
  flush refuses instead of blocking and consecutive batches **coalesce**
  in the outbox until either the queue frees up or the coalescing cap
  forces a blocking submit — bounded memory, bounded latency, no drops.
* :meth:`EAGrServer.read_batch` — route reads to owning shards.  The
  per-shard FIFO queue orders them after every previously accepted write
  (read-your-writes per shard).  On the **shared-memory transport** (the
  default for columnar process deployments) push readers are answered
  zero-copy from the shard's shared value columns instead: the front-end
  waits on the shard's applied watermark, gathers under the store's
  seqlock stamp, and finalizes locally — no request, no reply, no pickle.
* **Transports** — requests reach process workers either over bounded
  ``mp.Queue``\\ s (the fallback for object-store aggregates and no-numpy
  hosts) or through per-shard shared-memory ingress rings
  (:mod:`repro.serve.shm`): accepted write batches are scattered into the
  ring as length-prefixed frames published tail-last (seqlock-style batch
  framing), workers poll, and the per-batch acknowledgement disappears —
  the applied watermark rides the ring header.  FIFO order, and with it
  every guarantee in this docstring, is transport-independent.
* :meth:`EAGrServer.subscribe` / :meth:`EAGrServer.unsubscribe` — standing
  queries: shards diff watched egos after each applied batch (via the
  runtime's O(affected) changed-reader report) and push
  :class:`~repro.serve.messages.Notification` events, which reply-drainer
  threads deliver into per-subscriber queues with strictly monotone,
  **contiguous** per-subscriber stamps.
* **Durability and resume** — every stamped notification is appended to the
  subscriber's :class:`~repro.serve.journal.NotificationLog` (bounded ring,
  optionally disk-backed) *before* live delivery.  A disconnected client
  reconnects with ``subscribe(..., resume_from=N)`` and receives the
  journal suffix with the original stamps ``> N`` spliced gap-free ahead of
  live deliveries — exactly-once-after-resume.  A ``resume_from`` older
  than the journal's horizon raises
  :class:`~repro.serve.journal.ResumeGapError` (never a silent gap).
* **Checkpoint / restart** — :meth:`EAGrServer.checkpoint` snapshots each
  shard's restart state (window buffers, watch registry, applied batch
  number) and truncates the per-shard *redo log* of submitted write
  batches; :meth:`EAGrServer.restart_shard` rebuilds a dead worker from
  its spec + checkpoint, re-arms subscriptions, and replays the redo log
  idempotently (batch numbers already applied are skipped shard-side,
  already-delivered notification values are suppressed front-side).
* :meth:`EAGrServer.drain` / :meth:`EAGrServer.close` — barrier and
  clean shutdown (flushes, never drops).

Write ingestion is designed for one producer thread (the order of two
racing ``write_batch`` calls is undefined anyway); reads, subscriptions
and notifications are thread-safe.
"""

from __future__ import annotations

import os as _os
import queue as _queue
import threading
import time as _time
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.execution import normalize_write
from repro.core.query import EgoQuery
from repro.core.statestore import WriteFrame, _np
from repro.graph.dynamic_graph import DynamicGraph
from repro.serve.executors import make_executor
from repro.serve.frames import ChangeFrame, NoteFrame
from repro.serve.journal import (
    NotificationLog,
    ResumeGapError,
    subscriber_log_path,
)
from repro.serve.messages import (
    Notification,
    OP_CHECKPOINT,
    OP_DRAIN,
    OP_HANDLES,
    OP_READ,
    OP_STATS,
    OP_SUBSCRIBE,
    OP_UNSUBSCRIBE,
    OP_WRITE,
    R_ERR,
    R_OK,
    R_STOPPED,
    R_WRITE,
    ShardCheckpoint,
)
from repro.serve.shard import ShardSpec

NodeId = Hashable


class ServeError(Exception):
    """Raised when a shard reports an error or a reply times out."""


class _Call:
    """One awaited request: an event plus its result-or-error slot."""

    __slots__ = ("event", "result", "error", "shard")

    def __init__(self, shard: Optional[int] = None) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[str] = None
        self.shard = shard


class _SubState:
    """Server-side per-subscriber delivery state.

    ``queue`` is ``None`` while the subscriber is disconnected — the
    journal keeps recording, live delivery is skipped.  ``stamp`` is the
    last stamp assigned (it survives reconnects; replay re-uses original
    stamps).  ``last_batch`` maps each ego to the shard write stamp of
    its last delivered notification: a restarted shard re-derives
    notifications from its checkpointed baselines under the *same* write
    stamps (the runtime's global stamp is checkpoint-restored), so any
    notice at or below the recorded stamp is a replay the subscriber
    already saw and is suppressed.  ``watches`` maps
    ``shard_id -> {ego: None}`` so a restarted shard can be re-armed with
    this subscriber's standing queries.
    """

    __slots__ = (
        "queue",
        "stamp",
        "subscription",
        "journal",
        "last_batch",
        "watches",
        "acked",
    )

    def __init__(self, subscription: "Subscription", journal: NotificationLog) -> None:
        self.queue = subscription._queue
        self.journal = journal
        self.stamp = journal.last_stamp
        self.subscription = subscription
        self.last_batch: Dict[NodeId, int] = {}
        self.watches: Dict[int, Dict[NodeId, None]] = {}
        self.acked = 0


def _note_count(item: Any) -> int:
    """Notifications carried by one delivery-queue item (frame or object)."""
    return len(item) if item.__class__ is NoteFrame else 1


def _merge_segments(items: List) -> Any:
    """Outbox segments (triples and/or WriteFrames) -> one submit payload.

    The columnar write fast path appends per-shard subframes to the
    outboxes as segments; legacy rounds append plain triples.  A pure
    triple list passes through untouched, consecutive frames concatenate
    into one, and a mixed backlog (only under backpressure coalescing)
    flattens to triples — ``_submit_write`` re-packs it if it can.
    """
    if not any(seg.__class__ is WriteFrame for seg in items):
        return items
    if all(seg.__class__ is WriteFrame for seg in items):
        return WriteFrame.concat(items)
    flat: List[Tuple] = []
    for seg in items:
        if seg.__class__ is WriteFrame:
            flat.extend(seg.tolist())
        else:
            flat.append(seg)
    return flat


def _pending_count(segments: List) -> int:
    """Write events held in an outbox (frames count their rows)."""
    return sum(
        len(seg) if seg.__class__ is WriteFrame else 1 for seg in segments
    )


class Subscription:
    """A subscriber's handle: baseline snapshot + delivery queue.

    Notifications arrive in per-subscriber stamp order;
    :attr:`snapshot` holds the value of every subscribed ego at
    subscription time (the diffing baseline).

    On the binary data plane the queue carries
    :class:`~repro.serve.frames.NoteFrame` record batches instead of
    individual :class:`~repro.serve.messages.Notification` objects.
    :meth:`get` and :meth:`poll` hide the difference — frames
    materialize into notification objects on demand — while
    :meth:`poll_batch` hands the raw frames (columnar record-array
    views) straight to subscribers that want to stay allocation-free.
    """

    def __init__(self, subscriber: Hashable) -> None:
        self.subscriber = subscriber
        self.snapshot: Dict[NodeId, Any] = {}
        self._queue: "_queue.Queue[Any]" = _queue.Queue()
        #: notifications materialized from a partially-consumed frame.
        self._buffer: List[Notification] = []
        #: Optional zero-argument callable fired (from the delivery
        #: thread, outside any blocking wait) after each item lands in
        #: the queue.  The network gateway points this at its event
        #: loop so an async pump can sleep on an event instead of
        #: burning a thread per subscription.  Exceptions are swallowed:
        #: a dying hook must never take the reply drainer down with it.
        self.on_delivery: Optional[Callable[[], None]] = None

    def get(self, timeout: Optional[float] = None) -> Optional[Notification]:
        """Next notification, blocking up to ``timeout`` (``None``: forever);
        returns ``None`` on timeout.

        The deadline is absolute, computed once on entry: however many
        internal waits servicing the call takes, it returns no later
        than ``timeout`` seconds after it started — a wait can never be
        extended by wakeups that yield nothing.
        """
        if self._buffer:
            return self._buffer.pop(0)
        deadline = None if timeout is None else _time.monotonic() + timeout
        while True:
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    return None
            try:
                item = self._queue.get(timeout=remaining)
                break
            except _queue.Empty:
                return None
        if item.__class__ is NoteFrame:
            notes = item.notifications()
            self._buffer.extend(notes[1:])
            return notes[0]
        return item

    def poll(self) -> List[Notification]:
        """Drain everything currently queued without blocking."""
        drained: List[Notification] = list(self._buffer)
        self._buffer.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except _queue.Empty:
                return drained
            if item.__class__ is NoteFrame:
                drained.extend(item.notifications())
            else:
                drained.append(item)

    def poll_batch(self) -> List[Any]:
        """Drain without materializing: the columnar fast path.

        Returns the queued delivery items as they arrived — on the
        binary plane, :class:`~repro.serve.frames.NoteFrame` batches
        whose ``records`` attribute is the raw ``(ego, value, stamp,
        batch)`` record array (call :meth:`NoteFrame.notifications` per
        frame only if objects are needed); on the pickle plane, plain
        :class:`Notification` objects.  Notifications already
        materialized by an interleaved :meth:`get` are prepended as
        objects so no stamp is ever skipped or reordered.
        """
        drained: List[Any] = list(self._buffer)
        self._buffer.clear()
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except _queue.Empty:
                return drained

    @property
    def pending(self) -> int:
        """Number of undelivered notifications currently queued."""
        with self._queue.mutex:
            queued = sum(_note_count(item) for item in self._queue.queue)
        return len(self._buffer) + queued


class EAGrServer:
    """Front-end over K shard executors (see module docstring).

    Parameters
    ----------
    graph / query:
        As for :class:`~repro.core.engine.EAGrEngine`; the query's
        predicate (if any) is folded into the reader partition.
    num_shards:
        Number of shards.
    executor:
        ``"process"`` — one worker process per shard (true multi-core);
        ``"inprocess"`` — shards run synchronously in the caller
        (deterministic; tests/CI).
    transport:
        How requests reach process workers.  ``"auto"`` (default) picks
        the shared-memory transport — per-shard ingress rings plus a
        shared value-column segment answered zero-copy on reads —
        whenever the deployment supports it (process executor, numpy
        present, columnar-capable aggregate), and falls back to the
        pickle-over-queue transport otherwise (in-process executor,
        no numpy, object-store aggregates such as TOP-K).  ``"queue"``
        forces the fallback; ``"shm"`` demands shared memory and raises
        :class:`ServeError` when unsupported.
    binary_frames:
        Whether the data plane runs pickle-free (see
        :mod:`repro.serve.frames`).  ``"auto"`` (default) turns binary
        frames on whenever numpy is present, honouring the
        ``EAGR_BINARY_FRAMES`` environment variable (``"1"``/``"0"``)
        when set; pass ``True``/``False`` to override both.  When on,
        integer-keyed write batches pack once into
        :class:`~repro.core.statestore.WriteFrame` record arrays that
        ride the ingress ring, the redo log and the WAL as raw bytes,
        and shard change reports come back as columnar
        :class:`~repro.serve.frames.ChangeFrame`\\ s fanned out
        front-side into per-subscriber
        :class:`~repro.serve.frames.NoteFrame` batches.  Batches that
        fail the packing gate (non-``int`` keys, non-``float`` values)
        fall back to the pickle codec item-for-item — semantics are
        codec-independent.
    metrics:
        Whether the metrics plane is on (see :mod:`repro.obs` and the
        Observability section of PERFORMANCE.md).  ``"auto"`` (default)
        turns it on, honouring the ``EAGR_METRICS`` environment variable
        (``"0"``/``"false"``/``"no"``/``"off"`` disable); pass
        ``True``/``False`` to override.  When on, the front-end registry
        tracks routing/WAL/latency histograms, each shard worker
        publishes its own registry into a named shared-memory slab
        (scraped by :meth:`EAGrServer.metrics` with **zero IPC** on the
        shm transport), and every accepted binary write batch carries a
        monotonic ingress timestamp so ``server_stats()`` can report
        true end-to-end write→notify latency percentiles.  Designed to
        stay on in production — the overhead bound is benchmarked in
        ``benchmarks/bench_obs_overhead.py``.
    assign:
        Optional reader→shard assignment.  Defaults to the
        locality-aware :func:`~repro.core.partitioned.community_assignment`
        partition (BFS-grown balanced communities), which co-locates
        neighborhoods and cuts the multicast replication factor — the
        dominant serve-tier write cost — relative to a stable hash.
        Pass a callable for custom placement.
    queue_depth:
        Request-queue bound per shard — the backpressure window (queue
        transport).
    ring_bytes:
        Ingress-ring capacity per shard in bytes (shm transport); ring
        space is that transport's backpressure window.
    coalesce_max:
        Outbox size that forces a blocking flush on a backed-up shard.
    mp_context:
        Start method for process executors (``spawn`` default).
    reply_timeout:
        Seconds to wait for any single shard reply before raising
        :class:`ServeError`.
    journal_capacity:
        Entries retained per subscriber in the notification log — the
        resume window.  A ``resume_from`` older than the retained horizon
        raises :class:`~repro.serve.journal.ResumeGapError`.
    journal_dir:
        Directory for disk-backed notification logs (created if missing).
        ``None`` (default) keeps journals in memory only — they survive
        disconnects but not a front-end process restart.
    checkpoint_interval:
        Auto-checkpoint a shard whenever its redo log holds this many
        batches, bounding redo-log memory and restart replay time.
        ``None`` (default) leaves checkpointing to explicit
        :meth:`checkpoint` calls — except with ``wal_dir``, where it
        defaults to 256 so both the front-end redo log and the WAL's
        replay suffix stay bounded across long runs.
    wal_dir:
        Directory for the whole-server :class:`~repro.serve.wal.WriteAheadLog`.
        When set, every accepted write batch, checkpoint and watch change
        is persisted (fsync-disciplined) before being acknowledged, and a
        cold construction over an existing log **recovers**: the reader
        partition, batch counters, checkpoints, redo log, pending writes
        and watch registry are folded back from disk, every shard is
        rebuilt from its checkpoint, and the redo suffix replays
        batch-exact — reads and notification stamps reproduce the dead
        epoch's exactly.  ``journal_dir`` defaults to
        ``wal_dir/journals`` so subscriber journals survive too.  The
        log is single-writer (flock); a second live server on the same
        directory raises :class:`~repro.serve.wal.WalLockedError`.
    wal_options:
        Extra :class:`~repro.serve.wal.WriteAheadLog` keywords
        (``segment_bytes``, ``compact_min_bytes``, ``fsync``, ``faults``).
    value_store / engine_kwargs:
        Forwarded to every shard's engine.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        query: EgoQuery,
        num_shards: int = 2,
        executor: str = "process",
        transport: str = "auto",
        binary_frames: Any = "auto",
        metrics: Any = "auto",
        assign: Optional[Callable[[NodeId], int]] = None,
        queue_depth: int = 8,
        ring_bytes: int = 1 << 20,
        coalesce_max: int = 8192,
        mp_context: str = "spawn",
        reply_timeout: float = 120.0,
        journal_capacity: int = 4096,
        journal_dir: Optional[str] = None,
        checkpoint_interval: Optional[int] = None,
        wal_dir: Optional[str] = None,
        wal_options: Optional[Dict[str, Any]] = None,
        value_store: str = "auto",
        **engine_kwargs: Any,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        from repro.core.partitioned import community_assignment, partition_readers
        from repro.obs import MetricsRegistry, SlowOpLog, declare_shard_metrics

        # -- metrics plane: the registry comes up before the WAL so the
        # log's append/fsync paths can write straight into its slots ----
        self.metrics_enabled = self._resolve_metrics(metrics)
        self._registry = MetricsRegistry(enabled=self.metrics_enabled)
        reg = self._registry
        self._m_route = reg.histogram("srv_route_seconds")
        self._m_batch_rows = reg.histogram("srv_write_batch_rows")
        self._m_latency = reg.histogram("srv_write_notify_seconds")
        self._m_wal_append = reg.histogram("wal_append_seconds")
        self._m_wal_fsync = reg.histogram("wal_fsync_seconds")
        self._m_wal_bytes = reg.gauge("wal_total_bytes")
        self._m_write_calls = reg.counter("srv_write_batches")
        self._m_latency_discarded = reg.counter("srv_latency_discarded")
        self.slow_ops = SlowOpLog(
            threshold=float(_os.environ.get("EAGR_SLOW_OP_THRESHOLD") or 0.050)
        )
        #: layout-compatible decoder registry for shard slab scrapes (the
        #: worker registers the same schema in the same order).
        self._shard_schema = MetricsRegistry(enabled=True)
        declare_shard_metrics(self._shard_schema)
        self._scrape_lock = threading.Lock()

        # -- write-ahead log: open (and recover) before anything else ----
        self._wal = None
        recovered = None
        if wal_dir is not None:
            from repro.serve.wal import WriteAheadLog

            if journal_dir is None:
                journal_dir = _os.path.join(wal_dir, "journals")
            if checkpoint_interval is None:
                checkpoint_interval = 256
            wal_kwargs = dict(wal_options or {})
            if self.metrics_enabled:
                wal_kwargs.setdefault(
                    "metrics",
                    {
                        "append": self._m_wal_append,
                        "fsync": self._m_wal_fsync,
                        "bytes": self._m_wal_bytes,
                    },
                )
            self._wal = WriteAheadLog(wal_dir, **wal_kwargs)
            if self._wal.recovered:
                recovered = self._wal.state
                if recovered.num_shards != num_shards:
                    self._wal.close()
                    raise ValueError(
                        f"WAL at {wal_dir!r} belongs to a "
                        f"{recovered.num_shards}-shard deployment, not "
                        f"{num_shards}"
                    )

        self.graph = graph
        self.query = query
        self.num_shards = num_shards
        self.executor_kind = executor
        self._coalesce_max = coalesce_max
        self._reply_timeout = reply_timeout
        self._queue_depth = queue_depth
        self._ring_bytes = ring_bytes
        self._mp_context = mp_context
        self._journal_capacity = journal_capacity
        self._journal_dir = journal_dir
        self._checkpoint_interval = checkpoint_interval
        if journal_dir is not None:
            _os.makedirs(journal_dir, exist_ok=True)
        self.transport = self._resolve_transport(transport, executor, query)
        self.binary_frames = self._resolve_binary(binary_frames)

        # Balanced min-cut sharding by default: the writer→reader affinity
        # graph is partitioned on the Section-4 max-flow machinery
        # (``core.partition``), so a write multicasts to fewer shards than
        # under either the stable hash or the BFS community heuristic (see
        # ``replication_factor``).  A WAL recovery reuses the *persisted*
        # partition instead: every replayed (and future) write must route
        # to the shard the dead epoch's batch numbering assumed, whatever
        # the assignment algorithm would compute today.
        self.partition_epoch = 0
        if recovered is not None:
            self.assignment = recovered.meta.get("assignment", "recovered")
            self.reader_shard = dict(recovered.reader_shard)
            self.partition_epoch = recovered.meta.get("partition_epoch", 0)
        else:
            if assign is None and num_shards > 1:
                from repro.core.partition import mincut_assignment

                assign = mincut_assignment(graph, query, num_shards)
                self.assignment = "mincut"
            else:
                self.assignment = "custom" if assign is not None else "single"

            #: reader node -> owning shard (the user predicate already
            #: applied; same partition semantics as PartitionedEngine).
            self.reader_shard = partition_readers(graph, query, num_shards, assign)
            if self._wal is not None:
                self._wal.append(
                    (
                        "META",
                        {
                            "num_shards": num_shards,
                            "reader_shard": self.reader_shard,
                            "assignment": self.assignment,
                        },
                    ),
                    sync=True,
                )
        shard_readers: List[set] = [set() for _ in range(num_shards)]
        for node, shard_id in self.reader_shard.items():
            shard_readers[shard_id].add(node)

        # writer node -> shards whose readers aggregate it (multicast table).
        self.writer_shards: Dict[NodeId, Tuple[int, ...]] = (
            self._build_writer_shards(self.reader_shard)
        )

        # -- live resharding state ---------------------------------------
        #: shards mid-migration: their non-blocking flushes park (the
        #: producer never waits on a lock ``reshard`` holds) and their
        #: auto-checkpoints defer.  Mutated under the route lock.
        self._migrating: set = set()
        #: serializes concurrent ``reshard``/``rebalance`` calls.
        self._reshard_lock = threading.Lock()
        #: test seam: ``{"pre_checkpoint"|"pre_swap"|"post_swap": fn}``
        #: called at the named points inside :meth:`reshard` (the
        #: crash-mid-migration schedules kill the process here).
        self.reshard_faults: Dict[str, Callable[[], None]] = {}
        #: (writes_sent, writes_delivered) at the last partition-epoch
        #: change: the observed replication ratio is measured from here,
        #: so a reshard resets it (satellite of the planned/observed split).
        self._epoch_base = (0, 0)
        self.reshards = 0

        # -- per-request bookkeeping (shared with drainer threads) -------
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._pending: Dict[int, _Call] = {}
        self._pending_lock = threading.Lock()
        self._subs: Dict[Hashable, _SubState] = {}
        self._subs_lock = threading.Lock()
        self._async_errors: List[str] = []
        self._outbox: List[List[Tuple]] = [[] for _ in range(num_shards)]
        #: per-shard oldest ingress stamp of the writes currently parked
        #: in the outbox (route-lock-protected).  Covers the per-item
        #: path, whose triples cannot carry a stamp themselves — the
        #: flush attaches it to the frame ``_submit_write`` packs, so
        #: write→notify latency includes outbox dwell time either way.
        self._outbox_ingress: List[Optional[float]] = [None] * num_shards
        #: lazy routing cache for the columnar write fast path: ``None``
        #: or a ``(writer_shards, array_or_False)`` pair keyed by the
        #: exact dict the array was built from (``False`` = not
        #: applicable: sparse/non-int writer keys).  ``reshard`` swaps
        #: ``writer_shards`` wholesale, so the identity key is what
        #: invalidates a stale array — see :meth:`_route_table`.
        self._route_array: Any = None
        self._route_lock = threading.Lock()
        # One flush lock per shard, held across outbox-pop *and* submit:
        # without it a reader's blocking flush could observe an empty
        # outbox while a preempted producer still holds popped-but-not-
        # submitted writes, breaking read-your-writes (and two racing
        # flushes could enqueue batches out of acceptance order).
        self._flush_locks = [threading.Lock() for _ in range(num_shards)]
        self._clock = 0.0
        self._closed = False

        # -- durability bookkeeping (redo log, checkpoints) --------------
        #: per-shard monotone batch numbers (assigned under the flush lock).
        self._batch_no = [0] * num_shards
        #: per-shard redo log: ``(batch_no, items)`` for every submitted
        #: batch since the shard's last checkpoint — replayed on restart.
        self._write_log: List[List[Tuple[int, List[Tuple]]]] = [
            [] for _ in range(num_shards)
        ]
        #: latest checkpoint per shard (restart baseline).
        self._checkpoints: Dict[int, ShardCheckpoint] = {}
        self._flush_failed: set = set()
        #: Fail-stop marker, mirroring the WAL's fsync poisoning: the
        #: first background-flush failure records its reason here and
        #: every later ``write_batch`` refuses instead of ack'ing writes
        #: that would silently join an undeliverable backlog ("acked ⇒
        #: durable" must hold even without a WAL).  ``restart_shard``
        #: clears it once no shard remains flush-failed.
        self._poisoned: Optional[str] = None
        #: monotone id of the last accepted write round logged to the WAL.
        self._wal_seq = 0
        self.recovered_batches = 0
        if recovered is not None:
            self._wal_seq = recovered.wal_seq
            self._clock = recovered.clock
            self._batch_no = [
                recovered.batch_no.get(s, 0) for s in range(num_shards)
            ]
            self._write_log = [
                list(recovered.redo.get(s, ())) for s in range(num_shards)
            ]
            self._checkpoints = dict(recovered.checkpoints)

        self.writes_sent = 0
        self.writes_delivered = 0
        self.notifications_delivered = 0
        self.notifications_replayed = 0
        self.notifications_suppressed = 0
        self.coalesced_flushes = 0
        self.restarts = 0
        self.replayed_batches = 0
        self.shm_reads = 0

        # -- binary data plane bookkeeping --------------------------------
        #: per-shard ego -> ordered {subscriber: None} reverse watch map,
        #: mirrored from the shard-side registries under the subs lock:
        #: binary change reports carry one row per changed ego and the
        #: subscriber fan-out happens here, front-side.
        self._ego_watchers: List[Dict[NodeId, Dict[Hashable, None]]] = [
            {} for _ in range(num_shards)
        ]
        #: per-shard egress codec counters (complements each executor's
        #: ingress ``io`` dict in :meth:`server_stats`).
        self._egress: List[Dict[str, int]] = [
            {"egress_bytes": 0, "notes_binary": 0, "notes_pickle": 0}
            for _ in range(num_shards)
        ]

        # -- shared-memory transport wiring ------------------------------
        # The front-end names (and crash-safely unlinks) every segment:
        # per-shard ingress rings are created here and attached by the
        # workers; the per-shard value-store segments are *created by the
        # workers* (only they know the shard overlay) under front-end
        # names, attached here lazily for zero-copy reads.
        self._rings: List[Optional[Any]] = [None] * num_shards
        self._shm_stores: Dict[int, Any] = {}
        #: shard -> (store segment name, {node: (handle, is_push)}).
        self._handle_maps: Dict[
            int, Tuple[str, Dict[NodeId, Tuple[int, bool]]]
        ] = {}
        #: per-shard metrics slabs (shm transport + metrics on): created
        #: here by name, attached and published by the workers, scraped
        #: by :meth:`metrics` with zero IPC, unlinked in _release_shm.
        self._metric_slabs: List[Optional[Any]] = [None] * num_shards
        shm_specs: List[Optional[Dict[str, str]]] = [None] * num_shards
        if self.transport == "shm":
            from repro.serve.shm import ShmRing

            if self.metrics_enabled:
                from repro.obs import MetricsSlab

            base = "eagr{:x}_{:x}".format(
                _os.getpid(), int.from_bytes(_os.urandom(4), "little")
            )
            self._shm_base = base
            for shard_id in range(num_shards):
                self._rings[shard_id] = ShmRing(
                    f"{base}r{shard_id}", capacity=ring_bytes, create=True
                )
                shm_specs[shard_id] = {
                    "ring": f"{base}r{shard_id}",
                    "store": f"{base}v{shard_id}",
                }
                if self.metrics_enabled:
                    self._metric_slabs[shard_id] = MetricsSlab.create(
                        f"{base}m{shard_id}", self._shard_schema.n_slots
                    )
                    shm_specs[shard_id]["metrics"] = f"{base}m{shard_id}"
        else:
            self._shm_base = None
        # Zero-copy reads stay off for time windows (a read advances
        # window expiry shard-side, which a front-end column gather
        # cannot do) and for adaptive deployments (reads answered
        # front-side would starve the shard controller's observed-pull
        # signal, flip-flopping its decisions versus the queue
        # transport).  Writes still ride the ring either way.
        from repro.core.windows import TimeWindow as _TimeWindow

        self._shm_read_ok = (
            self.transport == "shm"
            and not isinstance(query.window, _TimeWindow)
            and not engine_kwargs.get("adaptive")
        )
        self._shm_lock = threading.Lock()

        self.specs = [
            ShardSpec(
                graph,
                query,
                shard_id=shard_id,
                num_shards=num_shards,
                readers=frozenset(shard_readers[shard_id]),
                value_store=value_store,
                engine_kwargs=engine_kwargs,
                shm=shm_specs[shard_id],
                binary_notices=self.binary_frames,
                metrics=self.metrics_enabled,
            )
            for shard_id in range(num_shards)
        ]
        if recovered is not None:
            for shard_id in range(num_shards):
                spec = self.specs[shard_id]
                spec.checkpoint = self._checkpoints.get(shard_id)
                # Redo batches must re-apply batch-exact so re-derived
                # notification stamps reproduce the dead epoch's (same
                # invariant as restart_shard).
                spec.merge_after = self._batch_no[shard_id]
        self._executors = [
            self._make_shard_executor(spec) for spec in self.specs
        ]
        if recovered is not None:
            self._recover_from_wal(recovered)
        # Background flusher: a refused non-blocking flush parks writes in
        # the outbox; without a retry they would sit there until the next
        # caller-driven flush, stalling notifications for an idle
        # producer.  This thread retries non-empty outboxes every
        # ``flush_interval`` seconds, bounding coalescing latency.
        self._flush_interval = 0.05
        self._stop_flusher = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="eagr-server-flusher", daemon=True
        )
        self._flusher.start()

    @staticmethod
    def _resolve_transport(transport: str, executor: str, query: EgoQuery) -> str:
        """Resolve ``auto``; validate an explicit choice (see __init__)."""
        if transport not in ("auto", "queue", "shm"):
            raise ValueError(
                f"transport must be 'auto', 'queue' or 'shm', got {transport!r}"
            )
        from repro.core.statestore import resolve_value_store

        supported = executor == "process" and resolve_value_store(
            query.aggregate, "shared"
        ) == "shared"
        if transport == "shm" and not supported:
            raise ServeError(
                "shm transport requires process executors, numpy and a "
                "columnar-capable aggregate"
            )
        if transport == "queue":
            return "queue"
        return "shm" if supported else "queue"

    @staticmethod
    def _resolve_binary(binary_frames: Any) -> bool:
        """Resolve the ``binary_frames`` toggle (see __init__).

        Precedence: explicit ``True``/``False`` > ``EAGR_BINARY_FRAMES``
        env var > auto (on iff numpy is importable).  Binary frames are
        record arrays, so without numpy the resolved flag is always
        ``False`` — an explicit ``True`` on a no-numpy host raises
        instead of silently degrading.
        """
        if binary_frames is True:
            if _np is None:
                raise ServeError("binary_frames=True requires numpy")
            return True
        if binary_frames is False:
            return False
        if binary_frames != "auto":
            raise ValueError(
                "binary_frames must be True, False or 'auto', "
                f"got {binary_frames!r}"
            )
        env = _os.environ.get("EAGR_BINARY_FRAMES")
        if env is not None and env.strip() != "":
            return env.strip() not in ("0", "false", "no", "off") and _np is not None
        return _np is not None

    @staticmethod
    def _resolve_metrics(metrics: Any) -> bool:
        """Resolve the ``metrics`` toggle (see __init__).

        Precedence: explicit ``True``/``False`` > ``EAGR_METRICS`` env
        var > on.  Unlike binary frames, metrics have no numpy
        dependency — the registry falls back to plain lists — so the
        default is unconditionally on.
        """
        if metrics is True:
            return True
        if metrics is False:
            return False
        if metrics != "auto":
            raise ValueError(
                f"metrics must be True, False or 'auto', got {metrics!r}"
            )
        env = _os.environ.get("EAGR_METRICS")
        if env is not None and env.strip() != "":
            return env.strip() not in ("0", "false", "no", "off")
        return True

    def _make_shard_executor(self, spec: ShardSpec):
        """Build the executor matching this deployment's transport."""
        if self.transport == "shm":
            return make_executor(
                "shm",
                spec,
                self._reply_handler(spec.shard_id),
                queue_depth=self._queue_depth,
                mp_context=self._mp_context,
                ring=self._rings[spec.shard_id],
            )
        return make_executor(
            self.executor_kind,
            spec,
            self._reply_handler(spec.shard_id),
            queue_depth=self._queue_depth,
            mp_context=self._mp_context,
        )

    def _build_writer_shards(
        self, reader_shard: Dict[NodeId, int]
    ) -> Dict[NodeId, Tuple[int, ...]]:
        """Writer -> multicast shard tuple implied by ``reader_shard``."""
        routing: Dict[NodeId, Dict[int, None]] = {}
        neighborhood = self.query.neighborhood
        graph = self.graph
        for reader, shard_id in reader_shard.items():
            for writer in neighborhood(graph, reader):
                routing.setdefault(writer, {})[shard_id] = None
        return {w: tuple(s) for w, s in routing.items()}

    def _recover_from_wal(self, recovered) -> None:
        """Finish a cold restart from the folded WAL state.

        Runs inside ``__init__`` after the executors are built (each
        already carrying its checkpoint and ``merge_after``) and before
        the background flusher starts, so nothing races the replay:

        1. per-subscriber state is rebuilt — the disk journal reloads
           (stamps continue where they stopped), the watch registry
           comes from the fold, and the per-ego replay filter is
           rehydrated from the subscribe-time seeds plus the retained
           journal entries' ``batch`` tags (valid here, and only here,
           because the batch-exact replay reproduces pre-crash shard
           stamps precisely);
        2. every shard is re-armed with its watches, then the redo
           suffix replays in order — already-checkpointed batches are
           skipped shard-side, re-derived notifications the dead epoch
           delivered are suppressed front-side;
        3. accepted-but-never-batched rounds (the dead outboxes) refill
           the outboxes and flush as fresh batches behind the replay.

        Recovered subscribers start *disconnected* (their client died
        with the old process); ``subscribe(resume_from=N)`` splices them
        back in with no gap and no duplicate.
        """
        for subscriber, shard_watches in recovered.watches.items():
            if not any(shard_watches.values()):
                continue
            state = self._make_substate(subscriber)
            state.queue = None
            for shard_id, egos in shard_watches.items():
                if not egos:
                    continue
                state.watches[shard_id] = dict.fromkeys(egos)
                watchers = self._ego_watchers[shard_id]
                for ego, seed in egos.items():
                    state.last_batch[ego] = seed
                    watchers.setdefault(ego, {})[subscriber] = None
            for note in state.journal.entries():
                if note.__class__ is NoteFrame:
                    # One journal entry may cover many egos: rehydrate the
                    # replay filter row by row from the record columns.
                    for ego, batch in zip(
                        note.records["ego"].tolist(),
                        note.records["batch"].tolist(),
                    ):
                        if state.last_batch.get(ego, -1) < batch:
                            state.last_batch[ego] = batch
                elif state.last_batch.get(note.ego, -1) < note.batch:
                    state.last_batch[note.ego] = note.batch
            with self._subs_lock:
                self._subs[subscriber] = state
        crash_after = self._wal.faults.get("crash_after_replay_batches")
        replayed = 0
        for shard_id in range(self.num_shards):
            ex = self._executors[shard_id]
            with self._subs_lock:
                rearm = [
                    (subscriber, list(state.watches.get(shard_id, ())))
                    for subscriber, state in self._subs.items()
                    if state.watches.get(shard_id)
                ]
            for subscriber, watch_nodes in rearm:
                ex.submit(
                    (OP_SUBSCRIBE, self._next_seq(), subscriber, watch_nodes)
                )
            for batch_no, items in self._write_log[shard_id]:
                if items.__class__ is WriteFrame:
                    # The dead epoch's monotonic ingress stamps are
                    # meaningless against this process's clock — a
                    # replayed batch must never produce a latency sample.
                    items.ingress = None
                ex.submit((OP_WRITE, self._next_seq(), batch_no, items))
                replayed += 1
                if crash_after is not None and replayed >= crash_after:
                    self._wal._crash("crash during WAL replay")
            ex.flush_bell()
            pending = recovered.pending_items(shard_id)
            if pending:
                for seg in pending:
                    if seg.__class__ is WriteFrame:
                        seg.ingress = None
                self._outbox[shard_id] = pending
        self.recovered_batches = replayed
        self.replayed_batches += replayed

    def _flush_loop(self) -> None:
        failed = self._flush_failed  # restart_shard() clears recovered shards
        while not self._stop_flusher.wait(self._flush_interval):
            for shard_id in range(self.num_shards):
                if shard_id in failed or not self._outbox[shard_id]:
                    continue
                try:
                    self._flush_shard(shard_id, block=False)
                    self._executors[shard_id].flush_bell()
                except Exception as exc:  # noqa: BLE001 - surfaced via drain/close
                    # One dead shard must not disable retries for the
                    # healthy ones; stop touching it, keep flushing the rest.
                    # But the *server* must stop accepting: a write_batch
                    # that succeed-acks after this point would pile writes
                    # behind a flush that can never happen, so the first
                    # failure poisons acceptance (write_batch raises) the
                    # same way a WAL fsync failure does.  restart_shard()
                    # is the recovery path.
                    failed.add(shard_id)
                    if self._poisoned is None:
                        self._poisoned = (
                            f"shard {shard_id}: background flush failed "
                            f"({type(exc).__name__}: {exc})"
                        )
                    self._async_errors.append(
                        f"shard {shard_id}: background flush failed"
                    )

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _reply_handler(self, shard_id: int) -> Callable[[Tuple], None]:
        def handle(reply: Tuple) -> None:
            kind = reply[0]
            if kind == R_WRITE:
                payload = reply[3]
                if payload.__class__ is ChangeFrame:
                    self._deliver_frame(shard_id, payload)
                else:
                    self._deliver(shard_id, payload)
                return
            if kind == R_STOPPED:
                return
            seq = reply[1]
            with self._pending_lock:
                call = self._pending.pop(seq, None)
            if call is None:
                if kind == R_ERR:
                    # A fire-and-forget write batch failed; surface it on
                    # the next drain()/close() instead of losing it.
                    self._async_errors.append(f"shard {shard_id}: {reply[2]}")
                return
            if kind == R_ERR:
                call.error = f"shard {shard_id}: {reply[2]}"
            else:
                call.result = reply[2]
            call.event.set()

        return handle

    def _deliver(self, shard_id: int, notices: Sequence[Tuple]) -> None:
        """Route shard notices into subscriber journals and queues.

        Stamps are assigned here, once, under the subscriber lock — the
        journal append happens *before* the live put, so every stamped
        notification is resumable.  A notice whose shard write stamp is
        at or below the last one delivered for that ego is a replay (a
        restarted shard re-diffing from its checkpointed baseline under
        checkpoint-restored stamps) and is suppressed: delivery is
        exactly-once per change even across shard restarts.
        """
        if not notices:
            return
        with self._subs_lock:
            for subscriber, ego, value, batch in notices:
                state = self._subs.get(subscriber)
                if state is None:  # unsubscribed while the notice was in flight
                    continue
                last = state.last_batch
                if last.get(ego, -1) >= batch:
                    self.notifications_suppressed += 1
                    continue
                last[ego] = batch
                state.stamp += 1
                note = Notification(
                    subscriber=subscriber,
                    ego=ego,
                    value=value,
                    stamp=state.stamp,
                    shard=shard_id,
                    batch=batch,
                )
                state.journal.append(note)
                if state.queue is not None:
                    state.queue.put(note)
                    hook = state.subscription.on_delivery
                    if hook is not None:
                        try:
                            hook()
                        except Exception:  # noqa: BLE001 - see on_delivery
                            pass
                self.notifications_delivered += 1
                self._egress[shard_id]["notes_pickle"] += 1

    def _deliver_frame(self, shard_id: int, frame: ChangeFrame) -> None:
        """Binary counterpart of :meth:`_deliver`.

        The shard reports one ``(ego, value)`` row per changed watched
        ego; subscriber fan-out happens here against the front-side
        reverse watch map.  Suppression, stamping and journaling follow
        the exact rules of :meth:`_deliver` — per-subscriber stamps are
        contiguous and each subscriber sees its changed egos in the
        shard's report order, so stamp assignment is codec-identical to
        the pickle plane.  Each subscriber's rows for the batch land as
        one :class:`~repro.serve.frames.NoteFrame`: one journal entry,
        one queue put, zero ``Notification`` allocations.
        """
        if not len(frame):
            return
        egos = frame.egos.tolist()
        values = frame.values.tolist()
        batch = frame.batch
        ingress = frame.ingress
        latency = None
        if ingress is not None and self.metrics_enabled:
            # T1 is taken here, in the same process whose clock stamped
            # T0 — no cross-process monotonic skew.  A stamp from a dead
            # epoch that slipped past the recovery zeroing would read as
            # an absurd duration; the guard discards it (counted) rather
            # than poisoning the histogram.
            latency = _time.monotonic() - ingress
            if not 0.0 <= latency < 3600.0:
                self._m_latency_discarded.inc()
                latency = None
        with self._subs_lock:
            watchers = self._ego_watchers[shard_id]
            per_sub: Dict[Hashable, Tuple[List[int], List[float]]] = {}
            for ego, value in zip(egos, values):
                subs = watchers.get(ego)
                if not subs:
                    continue
                for subscriber in subs:
                    state = self._subs.get(subscriber)
                    if state is None:  # unsubscribed while in flight
                        continue
                    last = state.last_batch
                    if last.get(ego, -1) >= batch:
                        self.notifications_suppressed += 1
                        continue
                    last[ego] = batch
                    entry = per_sub.get(subscriber)
                    if entry is None:
                        entry = per_sub[subscriber] = ([], [])
                    entry[0].append(ego)
                    entry[1].append(value)
            egress = self._egress[shard_id]
            for subscriber, (sub_egos, sub_values) in per_sub.items():
                state = self._subs[subscriber]
                first_stamp = state.stamp + 1
                state.stamp += len(sub_egos)
                note_frame = NoteFrame.build(
                    subscriber,
                    shard_id,
                    sub_egos,
                    sub_values,
                    first_stamp,
                    batch,
                    ingress=ingress,
                )
                state.journal.append(note_frame)
                if state.queue is not None:
                    state.queue.put(note_frame)
                    hook = state.subscription.on_delivery
                    if hook is not None:
                        try:
                            hook()
                        except Exception:  # noqa: BLE001 - see on_delivery
                            pass
                self.notifications_delivered += len(sub_egos)
                egress["notes_binary"] += len(sub_egos)
                egress["egress_bytes"] += note_frame.nbytes
                if latency is not None:
                    self._m_latency.observe(latency)
            if latency is not None and per_sub:
                self.slow_ops.note(
                    "write_notify", latency, shard=shard_id, egos=len(egos)
                )

    def _submit_call(self, shard_id: int, op: int, *payload: Any) -> _Call:
        seq = self._next_seq()
        call = _Call(shard_id)
        with self._pending_lock:
            self._pending[seq] = call
        ex = self._executors[shard_id]
        ex.submit((op, seq, *payload))
        # Awaited call: the worker must wake now for any frames deferred
        # by earlier write pushes plus this request (shm transport).
        ex.flush_bell()
        return call

    def _await(self, calls: Sequence[_Call]) -> List[Any]:
        results = []
        for call in calls:
            deadline = _time.monotonic() + self._reply_timeout
            while not call.event.wait(timeout=0.2):
                if _time.monotonic() >= deadline:
                    raise ServeError("timed out waiting for a shard reply")
                if call.shard is not None and not self._executors[call.shard].alive():
                    # Dead worker: give the drainer one beat to deliver a
                    # reply that was already on the wire, then fail fast
                    # instead of burning the whole reply timeout.
                    if not call.event.wait(timeout=0.5):
                        raise ServeError(
                            f"shard {call.shard}: worker died before replying"
                        )
                    break
            if call.error is not None:
                raise ServeError(call.error)
            results.append(call.result)
        return results

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("EAGrServer is closed")

    # ------------------------------------------------------------------
    # writes (multicast, coalescing, backpressure)
    # ------------------------------------------------------------------

    def _route_table(self, writer_shards=None):
        """Lazy node -> shard numpy lookup for packed write batches.

        ``-1`` marks writers no reader aggregates, ``-2`` multicast
        writers (those batches route on the per-item path).  Returns
        ``None`` when the writer key space is not dense non-negative
        ints (the table would be huge or impossible).  ``writer_shards``
        is never mutated in place — :meth:`reshard` installs a *new*
        dict under the route lock — so the cache is keyed by the dict's
        identity: a stale array can never be served for a new partition,
        and because the array is built from the single snapshot passed
        in (or read once here), a concurrent swap cannot produce a
        half-old half-new table.
        """
        if writer_shards is None:
            writer_shards = self.writer_shards
        cached = self._route_array
        if cached is not None and cached[0] is writer_shards:
            table = cached[1]
        else:
            table = False
            if _np is not None and writer_shards:
                top = -1
                dense = True
                for node in writer_shards:
                    if type(node) is not int or node < 0:
                        dense = False
                        break
                    if node > top:
                        top = node
                if dense and top < 4 * len(writer_shards) + 1024:
                    arr = _np.full(top + 1, -1, dtype=_np.int64)
                    for node, shards in writer_shards.items():
                        arr[node] = shards[0] if len(shards) == 1 else -2
                    table = arr
            self._route_array = (writer_shards, table)
        return None if table is False else table

    def _route_frame(self, frame, writer_shards=None) -> Optional[Dict[int, Any]]:
        """Split a packed batch into per-shard subframes, or ``None``.

        ``None`` falls back to the per-item path (multicast writers in
        the batch, writer ids outside the table).  Rows whose writer no
        reader aggregates are dropped, exactly like the per-item path
        drops them; a batch that lands wholly on one shard reuses the
        input frame without copying.  ``writer_shards`` pins the routing
        to one snapshot of the partition (see :meth:`_route_table`).
        """
        table = self._route_table(writer_shards)
        if table is None:
            return None
        nodes = frame.nodes
        if int(nodes.min()) < 0 or int(nodes.max()) >= len(table):
            return None
        route = table[nodes]
        parts: Dict[int, Any] = {}
        for shard_id in _np.unique(route).tolist():
            if shard_id == -2:
                return None
            if shard_id < 0:
                continue
            mask = route == shard_id
            parts[shard_id] = (
                frame
                if mask.all()
                else WriteFrame(frame.records[mask], ingress=frame.ingress)
            )
        return parts

    def write_batch(self, writes: Sequence) -> int:
        """Accept a batch of writes; returns the number accepted.

        Each write is stamped with a server-monotone timestamp when it
        carries none (so cross-shard time windows stay coherent), then
        multicast into the outboxes of every shard whose readers need its
        writer.  Outboxes flush without blocking; a backed-up shard's
        writes coalesce until :attr:`coalesce_max` forces backpressure.

        ``writes`` is a sequence of ``(node, value, timestamp)`` items or
        a pre-packed :class:`~repro.core.statestore.WriteFrame` (the
        network gateway hands the decoded wire frame straight through).

        Raises :class:`ServeError` without accepting anything once a
        background flush has failed (see :meth:`restart_shard`): a batch
        acknowledged after that point could never be delivered.
        """
        self._check_open()
        if self._poisoned is not None:
            raise ServeError(
                f"server poisoned by a flush failure ({self._poisoned}); "
                "restart_shard() the failed shard to resume accepting"
            )
        metered = self.metrics_enabled
        t0 = _time.monotonic() if metered else 0.0
        # Partition snapshot: routing below happens against this exact
        # dict, and the route-lock block re-verifies it by identity (a
        # concurrent reshard() installs a *new* dict, never mutates).
        writer_shards = self.writer_shards
        wal = self._wal
        touched: Dict[int, None] = {}
        logged: Dict[int, List[Tuple]] = {}
        count = 0
        # Columnar fast path: a batch of explicit (int, float, float)
        # triples packs ONCE at the door and routes through the numpy
        # node->shard table — no per-item Python below this point.  The
        # per-shard subframes land in the outboxes as segments (the
        # flush path merges segments back into one submit payload), and
        # the same subframes are the WAL round record.  Multicast
        # writers, unpackable items and exotic key spaces fall through
        # to the per-item loop with identical semantics.
        parts = frame = None
        if writes.__class__ is WriteFrame:
            # A pre-packed batch (the network gateway hands the decoded
            # wire frame straight through).  Routed columnar on the
            # binary plane; unpacked to triples when the plane is off or
            # the batch needs the per-item (multicast) path.
            if self.binary_frames and len(writes):
                frame = writes
                if metered:
                    frame.ingress = t0
                parts = self._route_frame(frame, writer_shards)
            if parts is None:
                writes = writes.tolist()
        elif self.binary_frames and writes.__class__ is list:
            frame = WriteFrame.from_items(writes)
            if frame is not None:
                if metered:
                    # T0 of the write→notify latency measurement: rides
                    # the frame through ring, shard and change report
                    # back to _deliver_frame (same process, same clock).
                    frame.ingress = t0
                parts = self._route_frame(frame, writer_shards)
        with self._route_lock:
            if self.writer_shards is not writer_shards:
                # A reshard() swapped the partition between the routing
                # above and this push.  Its step-4 residue re-route has
                # already run, so a batch routed by the old table would
                # be applied (and durably WAL-replayed) on shards a
                # moved reader just left and never reach the shard it
                # now lives on.  Re-route against the live table before
                # touching any outbox; the swap happens under this lock,
                # so the refreshed snapshot cannot go stale again here.
                writer_shards = self.writer_shards
                if parts is not None:
                    parts = self._route_frame(frame, writer_shards)
                    if parts is None:
                        # The new partition multicasts a writer in this
                        # batch: fall back to the per-item path.
                        writes = frame.tolist()
            outbox = self._outbox
            clock = self._clock
            if parts is not None:
                count = len(frame)
                top = float(frame.timestamps.max())
                if top > clock:
                    clock = top
                for shard_id, sub in parts.items():
                    outbox[shard_id].append(sub)
                    touched[shard_id] = None
                logged = parts
            else:
                for item in writes:
                    node, value, timestamp = normalize_write(item)
                    count += 1
                    if timestamp is None:
                        timestamp = clock = clock + 1.0
                    elif timestamp > clock:
                        clock = timestamp
                    shards = writer_shards.get(node)
                    if not shards:
                        continue  # no reader anywhere aggregates this writer
                    triple = (node, value, timestamp)
                    for shard_id in shards:
                        outbox[shard_id].append(triple)
                        touched[shard_id] = None
                        if wal is not None:
                            logged.setdefault(shard_id, []).append(triple)
            self._clock = clock
            self.writes_sent += count
            if metered:
                for shard_id in touched:
                    current = self._outbox_ingress[shard_id]
                    if current is None or t0 < current:
                        self._outbox_ingress[shard_id] = t0
            if wal is not None and count:
                if parts is None and self.binary_frames:
                    # Binary batch records: replay decodes each shard's
                    # round with one frombuffer instead of per-triple
                    # unpickling (unpackable rounds stay lists).
                    logged = {
                        shard_id: WriteFrame.from_items(triples) or triples
                        for shard_id, triples in logged.items()
                    }
                # Acceptance record, appended under the route lock: WAL
                # file order *is* acceptance order, so batch-number
                # coverage ("B" records) stays a simple seq interval.
                self._wal_seq += 1
                wal.append(("W", self._wal_seq, logged, clock))
        if metered:
            self._m_write_calls.inc()
            if count:
                # Row-count histogram: observed in units of 1e-6 so the
                # log2-µs buckets become log2-row buckets (a summary
                # "µs" value of N reads as N rows).
                self._m_batch_rows.observe(count * 1e-6)
            route_cost = _time.monotonic() - t0
            self._m_route.observe(route_cost)
            self.slow_ops.note("write_batch.route", route_cost, rows=count)
        migrating = self._migrating
        for shard_id in touched:
            if shard_id in migrating:
                continue  # parked for the live migration; rerouted at swap
            self._flush_shard(shard_id, block=False)
        for shard_id in touched:
            if shard_id in migrating:
                continue
            # One doorbell per shard per multicast round, rung after every
            # push: workers wake to a ring already holding the whole round
            # instead of preempting the producer between shard pushes.
            self._executors[shard_id].flush_bell()
        if wal is not None and count:
            # One fsync per accepted batch, after the lock is dropped:
            # when this call returns, the batch is on stable storage.
            wal.sync()
        if self._checkpoint_interval:
            # A dead shard cannot answer OP_CHECKPOINT — leave its redo
            # log growing (writes keep parking) until restart_shard().
            due = [
                shard_id
                for shard_id in touched
                if len(self._write_log[shard_id]) >= self._checkpoint_interval
                and shard_id not in migrating
                and self._executors[shard_id].alive()
            ]
            if due:
                self.checkpoint(due)
        return count

    def _flush_shard(self, shard_id: int, block: bool) -> None:
        lock = self._flush_locks[shard_id]
        if not block:
            # Non-blocking flushes must never wait on this lock: during a
            # live migration ``reshard`` holds it for the whole worker
            # rebuild, and a producer stuck here would violate the
            # availability contract (writes to non-moving writers block
            # at most one batch).  A missed flush is safe — the writes
            # stay parked and the background flusher (or the migration's
            # own final flush) carries them within ``_flush_interval``.
            if shard_id in self._migrating or not lock.acquire(blocking=False):
                return
        else:
            lock.acquire()
        try:
            taken = self._take_outbox(shard_id)
            if taken is None:
                return
            items, covered, ingress = taken
            if self._submit_write(
                shard_id, items, block=block, covered=covered, ingress=ingress
            ):
                return
            # Shard backed up: coalesce into the outbox; later flushes (or
            # the cap) carry these items in one bigger batch.
            with self._route_lock:
                restored = [items] if items.__class__ is WriteFrame else items
                self._outbox[shard_id] = restored + self._outbox[shard_id]
                if ingress is not None:
                    current = self._outbox_ingress[shard_id]
                    self._outbox_ingress[shard_id] = (
                        ingress if current is None else min(current, ingress)
                    )
                self.writes_delivered -= len(items)
                pending = _pending_count(self._outbox[shard_id])
            self.coalesced_flushes += 1
            if pending >= self._coalesce_max:
                taken = self._take_outbox(shard_id)
                if taken is not None:
                    self._submit_write(
                        shard_id,
                        taken[0],
                        block=True,
                        covered=taken[1],
                        ingress=taken[2],
                    )
        finally:
            lock.release()

    def _submit_write(
        self,
        shard_id: int,
        items: List[Tuple],
        block: bool,
        covered: int = 0,
        ingress: Optional[float] = None,
    ) -> bool:
        """Number, redo-log, and enqueue one write batch (flush lock held).

        The batch number is assigned and the batch recorded in the redo
        log — and, with a WAL, the ``("B", shard, batch_no, covered)``
        assignment record written — *before* the enqueue, so a batch a
        dying worker swallows is still replayable; a refused non-blocking
        submit rolls both back (the items return to the outbox and will
        renumber when they eventually flush; the WAL gets a compensating
        ``RB`` record).  Returns whether the batch was enqueued.

        On the binary plane the items pack **once** here into a
        :class:`~repro.core.statestore.WriteFrame`: the redo log, the
        executor submit (hence the ring payload or queue pickle) and any
        restart/recovery replay all share the same record array — no
        repacking, no per-item work downstream.  Batches that fail the
        packing gate stay lists and ride the pickle codec unchanged.
        """
        if self.binary_frames and items.__class__ is list:
            frame = WriteFrame.from_items(items)
            if frame is not None:
                # Packed here (not at the door: e.g. the producer let
                # the server assign timestamps), so the outbox's oldest
                # ingress stamp attaches here too.
                frame.ingress = ingress
                items = frame
        batch_no = self._batch_no[shard_id] + 1
        self._batch_no[shard_id] = batch_no
        self._write_log[shard_id].append((batch_no, items))
        if self._wal is not None:
            self._wal.append(("B", shard_id, batch_no, covered))
        request = (OP_WRITE, self._next_seq(), batch_no, items)
        ex = self._executors[shard_id]
        if block:
            ex.submit(request)
            return True
        if ex.try_submit(request):
            return True
        self._batch_no[shard_id] = batch_no - 1
        self._write_log[shard_id].pop()
        if self._wal is not None:
            self._wal.append(("RB", shard_id, batch_no))
        return False

    def _take_outbox(
        self, shard_id: int
    ) -> Optional[Tuple[List[Tuple], int, Optional[float]]]:
        """Pop a shard's outbox (caller holds that shard's flush lock).

        Returns ``(items, covered, ingress)`` where ``covered`` is the
        WAL accept seq the pop observed: every accepted round up to it
        that touched this shard is in ``items`` — which is exactly what a
        ``B`` record needs to reconstruct the batch from ``W`` records on
        recovery.  ``ingress`` is the oldest ingress stamp of the popped
        writes (``None`` when un-metered); a frame payload absorbs it
        directly, a list payload carries it to ``_submit_write``'s pack.
        """
        with self._route_lock:
            return self._take_outbox_locked(shard_id)

    def _take_outbox_locked(
        self, shard_id: int
    ) -> Optional[Tuple[List[Tuple], int, Optional[float]]]:
        """Core of :meth:`_take_outbox`; caller holds the route lock too.

        ``reshard`` calls this directly so its quiesce drain can take
        *every* affected shard's outbox in one route-lock critical
        section: multicast pushes are atomic under that lock, so a
        single atomic snapshot keeps the drained/residue split identical
        across shards for every multicast writer.
        """
        items = self._outbox[shard_id]
        if not items:
            return None
        self._outbox[shard_id] = []
        ingress = self._outbox_ingress[shard_id]
        self._outbox_ingress[shard_id] = None
        payload = _merge_segments(items)
        if payload.__class__ is WriteFrame:
            stamps = [
                s for s in (payload.ingress, ingress) if s is not None
            ]
            payload.ingress = min(stamps) if stamps else None
            ingress = payload.ingress
        self.writes_delivered += len(payload)
        return payload, self._wal_seq, ingress

    def flush(self) -> None:
        """Force every outbox into its shard queue (blocking on full queues)."""
        for shard_id in range(self.num_shards):
            self._flush_shard(shard_id, block=True)
            self._executors[shard_id].flush_bell()

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, node: NodeId) -> Any:
        """Evaluate the query at one node."""
        return self.read_batch([node])[0]

    def read_batch(self, nodes: Sequence[NodeId]) -> List[Any]:
        """Evaluate the query at each node, preserving input order.

        Flushes the involved shards' outboxes first, so a read observes
        every write this server accepted before the call (per-shard FIFO
        read-your-writes).  On the shm transport, push readers are
        answered **zero-copy** from the shard's shared value columns:
        the front-end waits for the shard's applied watermark to cover
        every batch it routed (read-your-writes without a round-trip),
        gathers the column scalars under the store's seqlock stamp —
        retrying if a concurrent batch landed mid-gather — and finalizes
        locally.  Pull readers, time-window queries, cleared slots
        (adaptive flips) and dead workers fall back to ``OP_READ``.
        """
        self._check_open()
        nodes = list(nodes)
        aggregate = self.query.aggregate
        identity = aggregate.finalize(aggregate.identity())
        results: List[Any] = [identity] * len(nodes)
        # Shard resolution retries across a concurrent ``reshard``: a
        # blocking flush that waited out a migration may have resolved
        # ownership against the pre-swap table (``reshard`` installs a
        # *new* dict, so identity comparison detects the swap exactly).
        for _attempt in range(8):
            table = self.reader_shard
            per_shard: Dict[int, List[int]] = {}
            for position, node in enumerate(nodes):
                shard_id = table.get(node)
                if shard_id is not None:
                    per_shard.setdefault(shard_id, []).append(position)
            for shard_id in per_shard:
                self._flush_shard(shard_id, block=True)
            if self.reader_shard is table:
                break
        calls = []
        for shard_id, positions in per_shard.items():
            if self._shm_read_ok:
                positions = self._read_shm(shard_id, nodes, positions, results)
                if not positions:
                    continue
            calls.append(
                (
                    positions,
                    self._submit_call(
                        shard_id, OP_READ, [nodes[p] for p in positions]
                    ),
                )
            )
        for positions, call in calls:
            values = self._await([call])[0]
            for position, value in zip(positions, values):
                results[position] = value
        return results

    def _wait_applied(self, shard_id: int) -> None:
        """Block until the shard's applied watermark covers every batch
        this front-end has submitted to it (shm transport).

        The wait is bounded two ways, so a worker that dies between the
        caller's liveness check and the watermark publication can never
        hang this thread: every spin iteration re-checks worker liveness
        (fail fast with :class:`ServeError`, not the reply timeout), and
        an absolute deadline of ``reply_timeout`` catches a live-but-
        wedged worker.  Death is confirmed against the watermark once
        more before raising — a worker that applied the final batch and
        *then* exited left complete columns behind, and reads from them
        are correct.
        """
        ring = self._rings[shard_id]
        target = self._batch_no[shard_id]
        self._executors[shard_id].flush_bell()
        if ring.applied() >= target:
            return
        deadline = _time.monotonic() + self._reply_timeout
        while ring.applied() < target:
            if not self._executors[shard_id].alive():
                if ring.applied() >= target:
                    return  # applied everything, then exited: columns complete
                raise ServeError(
                    f"shard {shard_id}: worker died before applying "
                    f"batch {target}"
                )
            if _time.monotonic() >= deadline:
                raise ServeError(
                    f"shard {shard_id}: timed out waiting for batch "
                    f"{target} to apply"
                )
            _time.sleep(0.0002)

    def _attach_store(self, shard_id: int, name: str):
        """Attach (or re-attach) the shard's shared value columns by the
        name the shard itself reported — a worker whose store migrated to
        a fresh segment (owner growth re-allocates under a new name) must
        not be read through the stale mapping.  Returns ``None`` when the
        segment is not attachable (callers fall back to ``OP_READ``).
        Serialized on the shm lock: concurrent reader threads must not
        race an attach (leaking the loser's mapping) or close a store
        out from under each other on a name change."""
        from repro.core.statestore import SharedColumnarStore, ValueStoreError

        with self._shm_lock:
            store = self._shm_stores.get(shard_id)
            if store is not None:
                if store.name == name:
                    return store
                store.close()
                self._shm_stores.pop(shard_id, None)
            try:
                store = SharedColumnarStore.attach(
                    self.query.aggregate.column_spec, name
                )
            except (FileNotFoundError, ValueStoreError):
                return None
            self._shm_stores[shard_id] = store
            return store

    def _shm_handle_map(self, shard_id: int):
        """``(store segment name, {node: (handle, is_push)})`` for the
        shard (fetched once per worker incarnation over the ring, so it
        trails every boot-time rebuild)."""
        cached = self._handle_maps.get(shard_id)
        if cached is None:
            store_name, hmap = self._await(
                [self._submit_call(shard_id, OP_HANDLES)]
            )[0]
            with self._shm_lock:
                cached = self._handle_maps.setdefault(
                    shard_id,
                    (store_name or self.specs[shard_id].shm["store"], hmap),
                )
        return cached

    def _read_shm(
        self,
        shard_id: int,
        nodes: Sequence[NodeId],
        positions: List[int],
        results: List[Any],
    ) -> List[int]:
        """Serve what we can from the shard's shared columns.

        Fills ``results`` in place for push readers and returns the
        positions that still need a shard-side ``OP_READ`` (pull
        readers, cleared slots, or the whole list when the fast path is
        unavailable).  Raises :class:`ServeError` when the worker died
        before covering the watermark — same fail-fast surface as the
        queue path.
        """
        if not self._executors[shard_id].alive():
            return positions  # the queue path surfaces the death fast
        self._wait_applied(shard_id)
        store_name, hmap = self._shm_handle_map(shard_id)
        store = self._attach_store(shard_id, store_name)
        if store is None:
            return positions
        leftover: List[int] = []
        fast: List[Tuple[int, int]] = []
        for position in positions:
            info = hmap.get(nodes[position])
            if info is None or not info[1]:
                leftover.append(position)
            else:
                fast.append((position, info[0]))
        if not fast:
            return leftover
        columns = store.columns
        cleared_mask = store._cleared
        aggregate = self.query.aggregate
        unpack = aggregate.column_spec.unpack
        # Bounded validation retries: under sustained write pressure a
        # large gather can overlap a scatter on every attempt; after a
        # few failed validations the shard answers via OP_READ instead
        # of spinning toward the reply timeout.
        for attempt in range(8):
            stamp = store.read_seq()
            if stamp % 2 == 0:
                gathered = [
                    tuple(column[handle] for column in columns)
                    for _position, handle in fast
                ]
                cleared = [bool(cleared_mask[handle]) for _p, handle in fast]
                if store.read_seq() == stamp:
                    break
            _time.sleep(0.0002)
        else:
            return leftover + [position for position, _handle in fast]
        finalize = aggregate.finalize
        served = 0
        for (position, _handle), scalars, is_cleared in zip(
            fast, gathered, cleared
        ):
            if is_cleared:
                # Unmaterialized slot (e.g. an adaptive flip to pull since
                # the handle map was fetched): let the shard answer.
                leftover.append(position)
            else:
                results[position] = finalize(unpack(scalars))
                served += 1
        self.shm_reads += served
        return leftover

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    def _make_substate(self, subscriber: Hashable) -> _SubState:
        """Build fresh per-subscriber state (caller holds the subs lock).

        With a journal directory configured, a pre-existing log file is
        reloaded — stamps continue where they left off and the retained
        suffix is resumable even across a front-end process restart.
        """
        path = (
            subscriber_log_path(self._journal_dir, subscriber)
            if self._journal_dir is not None
            else None
        )
        journal = NotificationLog(capacity=self._journal_capacity, path=path)
        # Note: the per-ego replay filter (``last_batch``) is deliberately
        # NOT rehydrated from a reloaded journal here.  Its batch tags are
        # shard write stamps, which are stable across checkpoint-restored
        # shard restarts *within* a serving epoch — but a non-WAL reboot
        # builds fresh shards whose stamps restart at 0, so old-epoch tags
        # would suppress every new notification.  Fresh subscriptions
        # re-seed the filter at their subscribe-time stamps instead.  The
        # one path where rehydration *is* valid — WAL cold restart, whose
        # batch-exact replay reproduces old-epoch stamps — does it in
        # ``_recover_from_wal``.
        return _SubState(Subscription(subscriber), journal)

    def subscribe(
        self,
        subscriber: Hashable,
        nodes: Optional[Sequence[NodeId]] = None,
        resume_from: Optional[int] = None,
    ) -> Subscription:
        """Turn reads on ``nodes`` into a standing query for ``subscriber``.

        Returns the subscriber's :class:`Subscription` (one per subscriber
        id; repeated calls extend it).  Its :attr:`~Subscription.snapshot`
        carries each ego's value at subscribe time — notifications then
        fire exactly for later changes.  Egos that no shard owns (filtered
        out by the query predicate or absent from the graph) appear in the
        snapshot with the identity value and never notify.

        With ``resume_from=N`` this is a **reconnect**: the subscriber
        gets a fresh :class:`Subscription` whose queue starts with the
        journal suffix — every notification with stamp ``> N``, carrying
        the *original* stamps — and live deliveries splice in after it
        with no gap and no duplicate (the replay and the splice happen
        atomically under the delivery lock).  Raises
        :class:`~repro.serve.journal.ResumeGapError` when the journal no
        longer retains stamp ``N+1`` (ring overflow or acknowledged
        past it); the caller must re-baseline with a plain ``subscribe``
        instead.  ``nodes`` may be omitted on reconnect (existing watches
        stand); passing nodes as well extends the watch set in the same
        call.
        """
        self._check_open()
        nodes = list(nodes) if nodes is not None else []
        with self._subs_lock:
            state = self._subs.get(subscriber)
            if state is None:
                state = self._make_substate(subscriber)
                self._subs[subscriber] = state
            if resume_from is not None:
                replayed = state.journal.replay(resume_from)  # may raise
                subscription = Subscription(subscriber)
                state.subscription = subscription
                state.queue = subscription._queue
                for note in replayed:
                    state.queue.put(note)
                self.notifications_replayed += sum(
                    _note_count(note) for note in replayed
                )
            elif state.queue is None:
                # Re-baseline after a disconnect (e.g. the resume window
                # was lost to a ResumeGapError): fresh queue, no replay —
                # the journal suffix is forfeited, live delivery resumes.
                subscription = Subscription(subscriber)
                state.subscription = subscription
                state.queue = subscription._queue
            subscription = state.subscription
        aggregate = self.query.aggregate
        identity = aggregate.finalize(aggregate.identity())
        # Same reshard-aware re-resolution as ``read_batch``: settle on a
        # routing table that survived the blocking flushes before arming
        # any shard-side watch.
        for _attempt in range(8):
            table = self.reader_shard
            per_shard: Dict[int, List[NodeId]] = {}
            for node in nodes:
                shard_id = table.get(node)
                if shard_id is not None:
                    per_shard.setdefault(shard_id, []).append(node)
            for shard_id in per_shard:
                self._flush_shard(shard_id, block=True)
            if self.reader_shard is table:
                break
        for node in nodes:
            if table.get(node) is None:
                subscription.snapshot[node] = identity
        calls = []
        for shard_id, shard_nodes in per_shard.items():
            calls.append(
                self._submit_call(shard_id, OP_SUBSCRIBE, subscriber, shard_nodes)
            )
        for (shard_id, shard_nodes), (snapshot, shard_stamp) in zip(
            per_shard.items(), self._await(calls)
        ):
            subscription.snapshot.update(snapshot)
            with self._subs_lock:
                state.watches.setdefault(shard_id, {}).update(
                    dict.fromkeys(shard_nodes)
                )
                watchers = self._ego_watchers[shard_id]
                for ego in shard_nodes:
                    watchers.setdefault(ego, {})[subscriber] = None
                for ego in snapshot:
                    # Seed the replay filter at the subscribe-time stamp:
                    # a redo replay of earlier batches must not notify
                    # this subscriber.  setdefault — a racing live
                    # delivery (necessarily a later stamp) wins.
                    state.last_batch.setdefault(ego, shard_stamp)
            if self._wal is not None:
                # Persist the watch *and* its filter seed: a cold restart
                # must not deliver pre-subscription changes either.
                self._wal.append(
                    ("S", subscriber, shard_id, list(shard_nodes), shard_stamp),
                    sync=True,
                )
        return subscription

    def disconnect(self, subscriber: Hashable) -> int:
        """Sever ``subscriber``'s live queue (a client vanishing).

        Shard watches stay armed and the journal keeps recording, so a
        later ``subscribe(..., resume_from=N)`` replays everything missed.
        Returns the last stamp delivered-or-journaled for the subscriber
        (what a fully caught-up client would resume from).  Unknown
        subscribers return 0.
        """
        with self._subs_lock:
            state = self._subs.get(subscriber)
            if state is None:
                return 0
            state.queue = None
            return state.stamp

    def last_stamp(self, subscriber: Hashable) -> int:
        """The last notification stamp assigned to ``subscriber`` (0 for
        unknown subscribers).  A fully caught-up client holds exactly
        this value as its resume token; the gateway reports it in
        subscribe replies so reconnect cursors start from truth rather
        than from whatever the client last saw."""
        with self._subs_lock:
            state = self._subs.get(subscriber)
            return 0 if state is None else state.stamp

    def resume_horizon(self, subscriber: Hashable) -> int:
        """The oldest stamp a ``resume_from`` may name without raising
        :class:`~repro.serve.journal.ResumeGapError` — the subscriber's
        journal horizon (``evicted_through``).  0 for unknown
        subscribers (everything is resumable)."""
        with self._subs_lock:
            state = self._subs.get(subscriber)
            return 0 if state is None else state.journal.resumable_from

    def ack(self, subscriber: Hashable, stamp: int) -> int:
        """Acknowledge delivery through ``stamp``: the journal drops that
        prefix (freeing resume-window space) and a later ``resume_from``
        below ``stamp`` raises
        :class:`~repro.serve.journal.ResumeGapError`.  Returns the number
        of journal entries released.  Acknowledging a stamp that was never
        delivered raises ``ValueError`` — silently accepting it would
        advance the journal's horizon past its own stamp counter and
        poison the next append (killing the reply drainer).
        """
        with self._subs_lock:
            state = self._subs.get(subscriber)
            if state is None:
                return 0
            if stamp > state.stamp:
                raise ValueError(
                    f"cannot ack stamp {stamp}: nothing beyond "
                    f"{state.stamp} has been delivered to {subscriber!r}"
                )
            state.acked = max(state.acked, stamp)
            return state.journal.truncate(stamp)

    def unsubscribe(
        self, subscriber: Hashable, nodes: Optional[Sequence[NodeId]] = None
    ) -> int:
        """Cancel ``subscriber``'s watches on ``nodes`` (``None``: all).

        Returns the number of (ego, shard) watches removed.  With
        ``nodes=None`` the subscriber's delivery queue is also retired —
        in-flight notifications for it are dropped.
        """
        self._check_open()
        calls = []
        if nodes is None:
            for shard_id in range(self.num_shards):
                calls.append(
                    self._submit_call(shard_id, OP_UNSUBSCRIBE, subscriber, None)
                )
        else:
            per_shard: Dict[int, List[NodeId]] = {}
            for node in nodes:
                shard_id = self.reader_shard.get(node)
                if shard_id is not None:
                    per_shard.setdefault(shard_id, []).append(node)
            for shard_id, shard_nodes in per_shard.items():
                calls.append(
                    self._submit_call(
                        shard_id, OP_UNSUBSCRIBE, subscriber, shard_nodes
                    )
                )
        removed = sum(self._await(calls))
        if self._wal is not None:
            self._wal.append(
                ("U", subscriber, None if nodes is None else list(nodes)),
                sync=True,
            )
        if nodes is None:
            # Deliberate retirement: the journal (and its file) go too —
            # this is the one path that forgets a subscriber entirely.
            with self._subs_lock:
                state = self._subs.pop(subscriber, None)
                for watchers in self._ego_watchers:
                    for ego in list(watchers):
                        watchers[ego].pop(subscriber, None)
                        if not watchers[ego]:
                            del watchers[ego]
            if state is not None:
                state.journal.close()
                if state.journal.path is not None:
                    try:
                        _os.remove(state.journal.path)
                    except OSError:  # pragma: no cover - best effort
                        pass
        else:
            with self._subs_lock:
                state = self._subs.get(subscriber)
                if state is not None:
                    for shard_id, shard_nodes in per_shard.items():
                        watched = state.watches.get(shard_id)
                        watchers = self._ego_watchers[shard_id]
                        for node in shard_nodes:
                            if watched is not None:
                                watched.pop(node, None)
                            subs = watchers.get(node)
                            if subs is not None:
                                subs.pop(subscriber, None)
                                if not subs:
                                    del watchers[node]
                            # Forget the replay filter: a re-subscribe
                            # re-seeds it at the new subscribe stamp.
                            state.last_batch.pop(node, None)
        return removed

    # ------------------------------------------------------------------
    # lifecycle and introspection
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Barrier: every accepted write is applied on every shard.

        Raises :class:`ServeError` if any fire-and-forget write batch
        failed since the previous barrier.
        """
        self._check_open()
        self.flush()
        calls = [
            self._submit_call(shard_id, OP_DRAIN)
            for shard_id in range(self.num_shards)
        ]
        self._await(calls)
        if self._async_errors:
            errors, self._async_errors = self._async_errors, []
            raise ServeError("; ".join(errors))

    def stats(self) -> List[Dict[str, Any]]:
        """Per-shard operational snapshots (counters, registry sizes)."""
        self._check_open()
        self.flush()
        calls = [
            self._submit_call(shard_id, OP_STATS)
            for shard_id in range(self.num_shards)
        ]
        return self._await(calls)

    def checkpoint(
        self, shards: Optional[Sequence[int]] = None
    ) -> Dict[int, ShardCheckpoint]:
        """Snapshot shard restart state; truncate the redo logs.

        For each target shard (default: all): flush its outbox, ask it for
        a :class:`~repro.serve.messages.ShardCheckpoint` (the request rides
        the FIFO queue, so the checkpoint covers every batch submitted
        before it), remember it as the shard's restart baseline, and drop
        redo-log batches the checkpoint already contains.  Returns the new
        checkpoints keyed by shard id.

        Checkpoint cost is O(shard state) — the window buffers and watch
        registry are pickled — so production deployments amortize it via
        ``checkpoint_interval`` rather than checkpointing per batch.
        """
        self._check_open()
        targets = list(range(self.num_shards)) if shards is None else list(shards)
        calls = []
        for shard_id in targets:
            self._flush_shard(shard_id, block=True)
            calls.append((shard_id, self._submit_call(shard_id, OP_CHECKPOINT)))
        out: Dict[int, ShardCheckpoint] = {}
        for shard_id, call in calls:
            ck = self._await([call])[0]
            self._checkpoints[shard_id] = ck
            with self._flush_locks[shard_id]:
                # Truncating here (not just at restart) is what bounds
                # front-end redo memory over a long run: entries the
                # persisted checkpoint covers can never replay again.
                self._write_log[shard_id] = [
                    entry
                    for entry in self._write_log[shard_id]
                    if entry[0] > ck.applied_through
                ]
                if self._wal is not None:
                    self._wal.append(("C", shard_id, ck), sync=True)
            out[shard_id] = ck
        if self._wal is not None:
            # Checkpoint-gated: once every shard has one, the log can
            # fold to a snapshot segment and stay size-bounded too.
            self._wal.maybe_compact()
        return out

    def restart_shard(self, shard_id: int) -> int:
        """Rebuild a (dead or live) shard worker and recover its state.

        The replacement is built from the shard's :class:`ShardSpec` plus
        its last checkpoint (blank slate when none was ever taken), then:

        1. every subscriber's watches on this shard are re-armed *first*,
           so their diffing baselines sit at checkpoint-time values;
        2. the redo log — every batch submitted since that checkpoint —
           replays in order.  Batch numbers the checkpoint already covers
           are skipped shard-side; re-derived notifications whose values
           subscribers already saw are suppressed front-side.

        Together that makes recovery exact: reads match a shard that never
        died, and subscribers observe no stamp gap, no duplicate, and no
        lost value-change.  A still-running worker is killed uncleanly
        first (this is crash recovery, not graceful migration — take a
        :meth:`checkpoint` before a planned restart to shrink the replay).
        Returns the number of redo batches replayed.
        """
        self._check_open()
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"no such shard: {shard_id}")
        with self._flush_locks[shard_id]:
            old = self._executors[shard_id]
            if old.alive():
                old.kill()
            spec = self.specs[shard_id].with_checkpoint(
                self._checkpoints.get(shard_id)
            )
            # Redo-log batches must re-apply batch-exact (their re-derived
            # notification stamps have to reproduce the pre-crash epoch's);
            # consumer-side merging resumes beyond the high-water mark.
            spec.merge_after = self._batch_no[shard_id]
            ring = self._rings[shard_id]
            if ring is not None:
                # Abandoned frames from the dead worker's epoch are
                # superseded by the redo-log replay below; the successor
                # starts from an empty ring and republishes its applied
                # watermark once it has restored the checkpoint.  The
                # value-store segment is left in place — the replacement
                # worker adopts it by name and re-materializes every
                # column, and this front-end's read attachment (plus the
                # handle map, refetched lazily) stays valid throughout.
                ring.reset()
            self._handle_maps.pop(shard_id, None)
            ex = self._make_shard_executor(spec)
            self._executors[shard_id] = ex
            self._flush_failed.discard(shard_id)
            if not self._flush_failed:
                # Every flush-failed shard has been rebuilt: acceptance
                # may resume (the un-poison mirror of _flush_loop).
                self._poisoned = None
            with self._subs_lock:
                rearm = [
                    (
                        state.subscription.subscriber,
                        list(state.watches.get(shard_id, ())),
                    )
                    for state in self._subs.values()
                    if state.watches.get(shard_id)
                ]
            for subscriber, watch_nodes in rearm:
                ex.submit((OP_SUBSCRIBE, self._next_seq(), subscriber, watch_nodes))
            replayed = 0
            for batch_no, items in self._write_log[shard_id]:
                if items.__class__ is WriteFrame:
                    # A redo replay is not a fresh write: its re-derived
                    # notifications must not report time-since-original-
                    # ingress as write→notify latency.
                    items.ingress = None
                ex.submit((OP_WRITE, self._next_seq(), batch_no, items))
                replayed += 1
            ex.flush_bell()
        self.restarts += 1
        self.replayed_batches += replayed
        return replayed

    # ------------------------------------------------------------------
    # live resharding
    # ------------------------------------------------------------------

    def _fault(self, point: str) -> None:
        hook = self.reshard_faults.get(point)
        if hook is not None:
            hook()

    def reshard(self, plan) -> Dict[str, Any]:
        """Migrate reader sets between shards **live** — no lost or
        duplicated notification, no blocked writer.

        ``plan`` is a :class:`~repro.serve.reshard.ReshardPlan` (or a
        plain ``{reader: destination_shard}`` dict).  The protocol, built
        entirely on the existing checkpoint/redo/WAL machinery:

        1. **Quiesce** the affected shards only: their flush locks are
           taken and their non-blocking flushes park (``write_batch``
           never waits — writes to moving writers collect in the
           outboxes as *residue*), then every already-parked write is
           force-flushed into the old workers.
        2. **Checkpoint** each affected shard through its FIFO queue —
           the reply guarantees every earlier notification was delivered,
           so watch moves below cannot strand an in-flight change.
        3. **Splice**: synthetic checkpoints are assembled per the new
           partition — moved readers' writer window buffers come from
           their source shard's checkpoint (multicast keeps shared
           buffers byte-identical across shards, so any donor is exact),
           watch registries and notify baselines move ego-by-ego, and
           every affected shard adopts the *maximum* write stamp/clock so
           re-derived notifications can never collide with a moved ego's
           replay filter.  Old workers are killed, new ones boot from the
           synthetic checkpoints, watches re-arm first (restart order).
        4. **Swap**, atomically under the route lock: a *new* routing
           table is installed (readers re-resolve by dict identity), the
           residue is re-routed under the new table (a write kept where
           its writer is still read, duplicated once — from the lowest
           affected source — to each shard its writer newly reaches),
           and a single WAL ``P`` record (epoch, moves, synthetic
           checkpoints, rerouted residue) makes the whole migration one
           atomic recovery event: a crash replays entirely before or
           entirely after it.
        5. The flush locks release, residue flushes to the new workers,
           the partition epoch bumps (resetting the observed replication
           window).

        Raises :class:`ServeError` (and leaves the old partition fully
        intact) if an affected worker dies before step 3 hands anything
        over; a failure *during* the splice poisons the server the same
        way a background flush failure does — ``restart_shard`` recovers.
        Returns a summary dict (``moved``, ``affected``, ``epoch``...).
        """
        self._check_open()
        moves: Dict[NodeId, int] = dict(getattr(plan, "moves", plan))
        for node, dst in list(moves.items()):
            dst = int(dst)
            if not 0 <= dst < self.num_shards:
                raise ValueError(f"no such shard: {dst}")
            if self.reader_shard.get(node) is None or (
                self.reader_shard[node] == dst
            ):
                del moves[node]
            else:
                moves[node] = dst
        if not moves:
            return {
                "moved": 0,
                "affected": [],
                "epoch": self.partition_epoch,
                "replication_factor": self.replication_factor,
            }
        import pickle as _pickle

        with self._reshard_lock:
            old_table = self.reader_shard
            sources = {old_table[node] for node in moves}
            affected = sorted(sources | set(moves.values()))
            affected_set = set(affected)
            with self._route_lock:
                self._migrating.update(affected)
            locks = [self._flush_locks[shard_id] for shard_id in affected]
            for lock in locks:
                lock.acquire()
            swapped = False
            try:
                # -- 1. drain the already-parked writes into the old epoch.
                # One route-lock critical section across every affected
                # shard: a multicast write pushed between per-shard takes
                # would be drained (applied + checkpointed) on one shard
                # yet remain residue on another — step 3's merged buffers
                # would bake its effect into the synthetic checkpoint AND
                # the residue would replay it after the swap, double-
                # counting the event.  An atomic snapshot makes the
                # drained/residue split identical across affected shards.
                with self._route_lock:
                    drained = {
                        shard_id: self._take_outbox_locked(shard_id)
                        for shard_id in affected
                    }
                for shard_id in affected:
                    taken = drained[shard_id]
                    if taken is not None:
                        self._submit_write(
                            shard_id,
                            taken[0],
                            block=True,
                            covered=taken[1],
                            ingress=taken[2],
                        )
                    self._executors[shard_id].flush_bell()
                self._fault("pre_checkpoint")

                # -- 2. checkpoint through the FIFO (notices all delivered)
                try:
                    calls = [
                        (shard_id, self._submit_call(shard_id, OP_CHECKPOINT))
                        for shard_id in affected
                    ]
                    cks: Dict[int, ShardCheckpoint] = {}
                    for shard_id, call in calls:
                        cks[shard_id] = self._await([call])[0]
                except RuntimeError as exc:
                    # A dead worker surfaces as the executor's submit-time
                    # RuntimeError; map it to the documented abort error.
                    raise ServeError(
                        f"reshard aborted: {exc}; restart_shard() and retry"
                    ) from exc
                for shard_id in affected:
                    ck = cks[shard_id]
                    self._write_log[shard_id] = [
                        entry
                        for entry in self._write_log[shard_id]
                        if entry[0] > ck.applied_through
                    ]
                    if self._wal is not None:
                        self._wal.append(("C", shard_id, ck), sync=True)

                # -- 3. splice state into the new partition ---------------
                new_table = dict(old_table)
                for node, dst in moves.items():
                    new_table[node] = dst
                new_readers: Dict[int, set] = {
                    shard_id: set() for shard_id in affected
                }
                for node, shard_id in new_table.items():
                    if shard_id in new_readers:
                        new_readers[shard_id].add(node)
                merged_buffers: Dict[NodeId, Any] = {}
                max_stamp = max(ck.stamp for ck in cks.values())
                max_clock = max(ck.clock for ck in cks.values())
                # Batch counters align to the max too: the front-end's
                # replay filter compares an ego's last delivered *batch
                # number* per ego, and an ego moving from a long-lived
                # shard to a younger one must not have its next change
                # land under a smaller number and read as a replay.
                max_batch = max(self._batch_no[sid] for sid in affected)
                for shard_id in affected:
                    merged_buffers.update(cks[shard_id].buffers)
                synthetic: Dict[int, ShardCheckpoint] = {}
                for shard_id in affected:
                    own = cks[shard_id]
                    readers = new_readers[shard_id]
                    watchers = {
                        ego: subs
                        for ego, subs in own.watchers.items()
                        if ego in readers
                    }
                    baseline = {
                        ego: value
                        for ego, value in own.baseline.items()
                        if ego in readers
                    }
                    for ego, dst in moves.items():
                        if dst != shard_id:
                            continue
                        src_ck = cks[old_table[ego]]
                        if ego in src_ck.watchers:
                            watchers[ego] = src_ck.watchers[ego]
                        if ego in src_ck.baseline:
                            baseline[ego] = src_ck.baseline[ego]
                    ck = ShardCheckpoint(
                        shard_id=shard_id,
                        applied_through=max_batch,
                        stamp=max_stamp,
                        clock=max_clock,
                        # The merged superset is exact for every writer the
                        # new overlay compiles (rebuild() drops the rest):
                        # multicast kept shared buffers identical, and a
                        # gained reader's writers all lived on its source.
                        buffers=merged_buffers,
                        watchers=watchers,
                        baseline=baseline,
                    )
                    # Pickle-isolate per shard: two in-process hosts must
                    # not alias the same buffer objects via the merge.
                    synthetic[shard_id] = _pickle.loads(_pickle.dumps(ck))
                self._fault("pre_swap")
            except BaseException:
                with self._route_lock:
                    self._migrating.difference_update(affected)
                for lock in reversed(locks):
                    lock.release()
                raise

            # Past this point a failure leaves shards mid-rebuild:
            # fail-stop (poison) instead of unwinding, like a flush crash.
            try:
                for shard_id in affected:
                    old = self._executors[shard_id]
                    if old.alive():
                        old.kill()
                for shard_id in affected:
                    self.specs[shard_id].readers = frozenset(
                        new_readers[shard_id]
                    )
                    self._checkpoints[shard_id] = synthetic[shard_id]
                    self._batch_no[shard_id] = max_batch
                    spec = self.specs[shard_id].with_checkpoint(
                        synthetic[shard_id]
                    )
                    spec.merge_after = max_batch
                    ring = self._rings[shard_id]
                    if ring is not None:
                        ring.reset()
                    self._handle_maps.pop(shard_id, None)
                    # Unlike restart_shard, the reader set changed: a
                    # rebuilt worker whose new overlay needs more handles
                    # than the segment's capacity recreates it — larger,
                    # under the SAME name — so the cached read attachment
                    # must go too, not just the handle map.
                    with self._shm_lock:
                        stale = self._shm_stores.pop(shard_id, None)
                        if stale is not None:
                            stale.close()
                    self._executors[shard_id] = self._make_shard_executor(spec)
                    self._flush_failed.discard(shard_id)

                # Move the front-side watch bookkeeping with the egos.
                with self._subs_lock:
                    for ego, dst in moves.items():
                        src = old_table[ego]
                        subs = self._ego_watchers[src].pop(ego, None)
                        if subs:
                            self._ego_watchers[dst][ego] = subs
                    for state in self._subs.values():
                        for ego, dst in moves.items():
                            src_watch = state.watches.get(old_table[ego])
                            if src_watch is not None and ego in src_watch:
                                del src_watch[ego]
                                state.watches.setdefault(dst, {})[ego] = None
                    rearm = [
                        (shard_id, subscriber, list(state.watches[shard_id]))
                        for subscriber, state in self._subs.items()
                        for shard_id in affected
                        if state.watches.get(shard_id)
                    ]
                # Watches re-arm before any write reaches the new workers
                # (FIFO: the flush below queues behind these), preserving
                # the restart ordering that makes baselines exact.
                for shard_id, subscriber, watch_nodes in rearm:
                    self._executors[shard_id].submit(
                        (OP_SUBSCRIBE, self._next_seq(), subscriber, watch_nodes)
                    )

                # -- 4. the atomic swap -----------------------------------
                with self._route_lock:
                    residue: Dict[int, List[Tuple]] = {}
                    residue_ingress = [
                        self._outbox_ingress[shard_id] for shard_id in affected
                    ]
                    for shard_id in affected:
                        flat: List[Tuple] = []
                        for segment in self._outbox[shard_id]:
                            if segment.__class__ is WriteFrame:
                                flat.extend(segment.tolist())
                            else:
                                flat.append(segment)
                        residue[shard_id] = flat
                        self._outbox[shard_id] = []
                        self._outbox_ingress[shard_id] = None
                    new_writer_shards = self._build_writer_shards(new_table)
                    old_writer_shards = self.writer_shards
                    rerouted: Dict[int, List[Tuple]] = {
                        shard_id: [] for shard_id in affected
                    }
                    for shard_id in affected:
                        for triple in residue[shard_id]:
                            writer = triple[0]
                            new_shards = new_writer_shards.get(writer, ())
                            old_shards = old_writer_shards.get(writer, ())
                            if shard_id in new_shards:
                                rerouted[shard_id].append(triple)
                            donor = min(
                                (s for s in old_shards if s in affected_set),
                                default=None,
                            )
                            if shard_id == donor:
                                for dst in new_shards:
                                    if dst not in old_shards:
                                        rerouted.setdefault(dst, []).append(
                                            triple
                                        )
                    stamps = [s for s in residue_ingress if s is not None]
                    refill_ingress = min(stamps) if stamps else None
                    for shard_id, items in rerouted.items():
                        if items:
                            self._outbox[shard_id].extend(items)
                            self._outbox_ingress[shard_id] = refill_ingress
                    self.reader_shard = new_table
                    self.writer_shards = new_writer_shards
                    self._route_array = None
                    self.partition_epoch += 1
                    self._epoch_base = (self.writes_sent, self.writes_delivered)
                    if self._wal is not None:
                        # One record, appended in acceptance order: every
                        # W before it replays under the old partition,
                        # every W after it under the new one.
                        self._wal.append(
                            (
                                "P",
                                self.partition_epoch,
                                dict(moves),
                                synthetic,
                                rerouted,
                            ),
                            sync=True,
                        )
                swapped = True
            except BaseException as exc:
                if self._poisoned is None:
                    self._poisoned = (
                        f"reshard failed mid-splice ({type(exc).__name__}: "
                        f"{exc}); restart_shard() the affected shards"
                    )
                self._flush_failed.update(affected)
                raise
            finally:
                with self._route_lock:
                    self._migrating.difference_update(affected)
                for lock in reversed(locks):
                    lock.release()
            self._fault("post_swap")

            # -- 5. release: residue flushes to the new workers ----------
            for shard_id in affected:
                self._flush_shard(shard_id, block=True)
                self._executors[shard_id].flush_bell()
            if self._wal is not None:
                self._wal.maybe_compact()
            self.reshards += 1
            return {
                "moved": len(moves),
                "affected": affected,
                "epoch": self.partition_epoch,
                "residue": sum(len(v) for v in rerouted.values()),
                "replication_factor": self.replication_factor,
            }

    def rebalance(
        self,
        policy=None,
        write_freq: Optional[Dict[NodeId, float]] = None,
    ) -> Dict[str, Any]:
        """Propose-and-apply: consume per-shard load from the metrics
        plane (``server_stats()["shard_load"]``), and if the skew crosses
        the policy threshold, :meth:`reshard` a migration plan that moves
        a writer-closure of readers off the hottest shard.  Returns the
        reshard summary (``moved == 0`` and ``"plan": None`` when load is
        balanced — calling this on a quiet server is free)."""
        from repro.serve.reshard import RebalancePolicy, propose_rebalance

        if policy is None:
            policy = RebalancePolicy()
        plan = propose_rebalance(self, policy=policy, write_freq=write_freq)
        if plan is None or not plan.moves:
            return {
                "moved": 0,
                "affected": [],
                "epoch": self.partition_epoch,
                "plan": None,
            }
        summary = self.reshard(plan)
        summary["plan"] = {"kind": plan.kind, "reason": plan.reason}
        return summary

    @property
    def replication_factor(self) -> float:
        """**Planned** replication: mean shards per writer in the current
        routing table — what the partitioner promised, independent of
        traffic.  The old single number conflated this with the observed
        delivery ratio (warmup and replayed batches included), which made
        partition quality unmeasurable; see
        :attr:`observed_replication_factor` for the traffic-weighted view.
        """
        total = sum(len(s) for s in self.writer_shards.values())
        return total / max(1, len(self.writer_shards))

    @property
    def observed_replication_factor(self) -> float:
        """**Observed** replication: multicast copies delivered per write
        accepted *since the last partition-epoch change* (a reshard resets
        the window, so the ratio reflects the current partition rather
        than averaging over dead epochs).  Falls back to the planned
        factor before any write lands in the window.
        """
        base_sent, base_delivered = self._epoch_base
        sent = self.writes_sent - base_sent
        if sent <= 0:
            return self.replication_factor
        return (self.writes_delivered - base_delivered) / sent

    def shard_sizes(self) -> List[int]:
        """Number of readers owned per shard."""
        sizes = [0] * self.num_shards
        for shard_id in self.reader_shard.values():
            sizes[shard_id] += 1
        return sizes

    def close(self) -> None:
        """Flush, stop every shard, release resources (idempotent).

        Closing flushes rather than drops: writes accepted before the
        call are applied before the shard workers exit (the stop request
        rides the same FIFO queue).  Raises :class:`ServeError` after the
        shutdown completes if any fire-and-forget write batch failed
        since the last :meth:`drain` — those writes were lost and the
        caller must learn about it.
        """
        if self._closed:
            return
        self._stop_flusher.set()
        self._flusher.join(timeout=5.0)
        try:
            self.flush()
        finally:
            self._closed = True
            for ex in self._executors:
                ex.stop(self._next_seq())
            # Journal files survive close (that is the point: a rebooted
            # front-end reloads them); only the handles are released.
            with self._subs_lock:
                for state in self._subs.values():
                    state.journal.close()
            self._release_shm()
            if self._wal is not None:
                # Closing drops the flock: a standby replica can promote.
                self._wal.close()
        if self._async_errors:
            # Fire-and-forget write failures since the last drain():
            # shutdown completed, but the caller must learn about them.
            errors, self._async_errors = self._async_errors, []
            raise ServeError("; ".join(errors))

    def _release_shm(self) -> None:
        """Tear down every shm segment this deployment named (idempotent).

        Crash-safe cleanup lives here, in the front-end: segments are
        unlinked **by name**, so value stores created by workers that
        have since died uncleanly are destroyed too; a worker that never
        got far enough to create its store simply yields a no-op unlink.
        The resource tracker remains the backstop for a front-end that
        dies before reaching this.
        """
        if self.transport != "shm":
            return
        from repro.core.statestore import unlink_segment

        for store in self._shm_stores.values():
            store.close()
        self._shm_stores.clear()
        self._handle_maps.clear()
        for shard_id, ring in enumerate(self._rings):
            if ring is not None:
                ring.unlink()
                self._rings[shard_id] = None
        for shard_id, slab in enumerate(self._metric_slabs):
            if slab is not None:
                slab.close()
                slab.unlink()
                self._metric_slabs[shard_id] = None
        for spec in self.specs:
            if spec.shm is not None:
                unlink_segment(spec.shm["store"])

    def _shard_metric_values(self, shard_id: int):
        """One shard's flat metric value array, by the cheapest route:
        shm slab scrape (zero IPC, no worker perturbation) > in-process
        host registry (direct read) > an ``OP_STATS`` round trip (the
        queue-transport fallback — the only route that costs a control
        message).  ``None`` when the shard cannot be scraped (dead
        worker, metrics off shard-side)."""
        slab = self._metric_slabs[shard_id]
        if slab is not None:
            try:
                return slab.scrape()
            except Exception:  # noqa: BLE001 - scrape must never raise
                return None
        ex = self._executors[shard_id]
        host = getattr(ex, "host", None)
        if host is not None:
            try:
                return host.metrics_values()
            except Exception:  # noqa: BLE001
                return None
        if not ex.alive():
            return None
        try:
            stats = self._await([self._submit_call(shard_id, OP_STATS)])[0]
        except ServeError:
            return None
        return stats.get("metrics_values")

    def metrics(self, include_buckets: bool = False) -> Dict[str, Any]:
        """Structured metrics snapshot — the metrics plane's API surface.

        Sections: ``server`` (front-end registry: route/WAL/write→notify
        histograms plus delivery counters), ``shard_io``/``codec_mix``
        (per-shard and summed frame-codec counters), ``shards`` (each
        shard's registry, scraped zero-IPC from its shared-memory slab on
        the shm transport), ``rings`` (ingress-ring occupancy),
        ``journal`` (notification-log occupancy and capacity evictions),
        ``wal`` (size and append/fsync counts) and ``slow_ops`` (the
        bounded structured event ring).  Shard-keyed sections are dicts
        keyed by the shard id as a string, which the Prometheus exporter
        turns into a ``shard=...`` label.  With ``include_buckets`` each
        histogram summary also carries its raw bucket counts.

        Safe to call concurrently with writes: scrapes are seqlock-
        consistent and never block either party.
        """
        server = dict(self._registry.snapshot(include_buckets))
        server.update(
            writes_sent=self.writes_sent,
            writes_delivered=self.writes_delivered,
            notifications_delivered=self.notifications_delivered,
            notifications_replayed=self.notifications_replayed,
            notifications_suppressed=self.notifications_suppressed,
            coalesced_flushes=self.coalesced_flushes,
            restarts=self.restarts,
            replayed_batches=self.replayed_batches,
            recovered_batches=self.recovered_batches,
            shm_reads=self.shm_reads,
        )
        shard_io: Dict[str, Dict[str, int]] = {}
        codec_mix: Dict[str, int] = {}
        for shard_id in range(self.num_shards):
            row = {**self._executors[shard_id].io, **self._egress[shard_id]}
            shard_io[str(shard_id)] = row
            for key, value in row.items():
                codec_mix[key] = codec_mix.get(key, 0) + value
        shards: Dict[str, Dict[str, Any]] = {}
        rings: Dict[str, Dict[str, Any]] = {}
        if self.metrics_enabled and not self._closed:
            with self._scrape_lock:
                for shard_id in range(self.num_shards):
                    values = self._shard_metric_values(shard_id)
                    if values is None:
                        continue
                    try:
                        self._shard_schema.load_values(values)
                    except ValueError:
                        continue  # schema drift: skip, don't lie
                    shards[str(shard_id)] = self._shard_schema.snapshot(
                        include_buckets
                    )
            for shard_id, ring in enumerate(self._rings):
                if ring is not None:
                    try:
                        rings[str(shard_id)] = ring.depth_stats()
                    except Exception:  # noqa: BLE001 - ring closed mid-scrape
                        pass
        with self._subs_lock:
            states = list(self._subs.values())
        journal = {
            "subscribers": len(states),
            "entries": sum(len(state.journal) for state in states),
            "notes": sum(state.journal.note_count for state in states),
            "evictions": sum(state.journal.evictions for state in states),
        }
        wal = self._wal
        wal_section = {
            "enabled": wal is not None,
            "total_bytes": wal.total_bytes() if wal is not None else 0,
            "appends": wal.appends if wal is not None else 0,
            "fsyncs": wal.fsyncs if wal is not None else 0,
        }
        return {
            "enabled": self.metrics_enabled,
            "server": server,
            "shard_io": shard_io,
            "codec_mix": codec_mix,
            "shards": shards,
            "rings": rings,
            "journal": journal,
            "wal": wal_section,
            "slow_ops": self.slow_ops.snapshot(),
        }

    def metrics_http(self, host: str = "127.0.0.1", port: int = 0):
        """Start a stdlib HTTP endpoint serving ``GET /metrics`` as
        Prometheus text exposition of :meth:`metrics`.  Returns the
        endpoint handle (``.port`` — useful with ``port=0`` — and
        ``.shutdown()``).  Entirely optional; nothing is started unless
        this is called."""
        from repro.obs import serve_metrics_http

        return serve_metrics_http(self, host=host, port=port)

    def _shard_load(self, m: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Per-shard load rows from a :meth:`metrics` snapshot: the numbers
        the rebalance policy consumes and operators read — same source
        (the ``obs`` shard gauges), so the two can never disagree."""
        sizes = self.shard_sizes()
        with self._route_lock:
            pending = [
                _pending_count(self._outbox[shard_id])
                for shard_id in range(self.num_shards)
            ]
        rows: List[Dict[str, Any]] = []
        for shard_id in range(self.num_shards):
            row = {
                "shard": shard_id,
                "readers": sizes[shard_id],
                "busy_fraction": 0.0,
                "applied_eps": 0.0,
                "ring_depth": 0,
                "outbox_pending": pending[shard_id],
            }
            scraped = m["shards"].get(str(shard_id))
            if scraped:
                row["busy_fraction"] = float(
                    scraped.get("shard_busy_fraction", 0.0)
                )
                row["applied_eps"] = float(scraped.get("shard_applied_eps", 0.0))
            ring = m["rings"].get(str(shard_id))
            if ring:
                row["ring_depth"] = int(ring.get("depth_frames", 0))
            rows.append(row)
        return rows

    def server_stats(self) -> Dict[str, Any]:
        """Front-end operational snapshot (complements per-shard
        :meth:`stats`): deployment shape, the reader-assignment strategy
        and its multicast **replication factor** — the average number of
        shards each accepted write fans out to, the serve tier's dominant
        write cost — plus transport counters (zero-copy reads served,
        coalesced flushes, restarts).

        A compatibility view over :meth:`metrics` — every counter here is
        sourced from the same snapshot, so the two never disagree.
        ``shard_io`` reports, per shard, what the frame codec chose on
        each hot path: ingress bytes and binary-vs-pickle write-frame
        counts (from the shard's executor), egress notification bytes
        and binary-vs-pickle notification counts (from the delivery
        threads).  ``codec_mix`` is the same, summed over shards — on a
        steady-state columnar workload with ``binary_frames`` on,
        ``write_frames_pickle`` and ``notes_pickle`` stay at zero.
        ``write_notify_latency`` is the end-to-end write→notify latency
        summary (count/sum/p50/p95/p99 in seconds) measured from
        ``write_batch`` ingress to subscriber-queue delivery through the
        full shm + binary-frame path; with metrics off (or on the pickle
        codec, which carries no ingress stamps) it reports zeros —
        present and finite either way.
        """
        m = self.metrics()
        server = m["server"]
        return {
            "num_shards": self.num_shards,
            "executor": self.executor_kind,
            "transport": self.transport,
            "assignment": self.assignment,
            "replication_factor": self.replication_factor,
            "observed_replication_factor": self.observed_replication_factor,
            "partition_epoch": self.partition_epoch,
            "reshards": self.reshards,
            "shard_load": self._shard_load(m),
            "shard_sizes": self.shard_sizes(),
            "writes_sent": self.writes_sent,
            "writes_delivered": self.writes_delivered,
            "shm_reads": self.shm_reads,
            "notifications_delivered": self.notifications_delivered,
            "coalesced_flushes": self.coalesced_flushes,
            "restarts": self.restarts,
            "replayed_batches": self.replayed_batches,
            "wal": m["wal"]["enabled"],
            "wal_bytes": m["wal"]["total_bytes"],
            "recovered_batches": self.recovered_batches,
            "binary_frames": self.binary_frames,
            "shard_io": [
                m["shard_io"][str(shard_id)]
                for shard_id in range(self.num_shards)
            ],
            "codec_mix": m["codec_mix"],
            "metrics_enabled": m["enabled"],
            "write_notify_latency": server["srv_write_notify_seconds"],
        }

    def __enter__(self) -> "EAGrServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary of the deployment."""
        return (
            f"EAGrServer(shards={self.num_shards}, executor={self.executor_kind}, "
            f"transport={self.transport}, assign={self.assignment}, "
            f"readers={self.shard_sizes()}, "
            f"replication={self.replication_factor:.2f})"
        )
