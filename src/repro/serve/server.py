"""EAGrServer: the sharded front-end for continuous ego-centric queries.

The server partitions the reader space over shards (each a full EAGr
engine behind an executor — worker process or in-process), then serves
four verbs:

* :meth:`EAGrServer.write_batch` — multicast each write to the shards
  whose readers need it.  Writes land in per-shard *outboxes* and flush
  through the executor's bounded queue; when a shard is backed up, the
  flush refuses instead of blocking and consecutive batches **coalesce**
  in the outbox until either the queue frees up or the coalescing cap
  forces a blocking submit — bounded memory, bounded latency, no drops.
* :meth:`EAGrServer.read_batch` — route reads to owning shards.  The
  per-shard FIFO queue orders them after every previously accepted write
  (read-your-writes per shard).
* :meth:`EAGrServer.subscribe` / :meth:`EAGrServer.unsubscribe` — standing
  queries: shards diff watched egos after each applied batch (via the
  runtime's O(affected) changed-reader report) and push
  :class:`~repro.serve.messages.Notification` events, which reply-drainer
  threads deliver into per-subscriber queues with strictly monotone
  per-subscriber stamps (at-least-once).
* :meth:`EAGrServer.drain` / :meth:`EAGrServer.close` — barrier and
  clean shutdown (flushes, never drops).

Write ingestion is designed for one producer thread (the order of two
racing ``write_batch`` calls is undefined anyway); reads, subscriptions
and notifications are thread-safe.
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.execution import normalize_write
from repro.core.query import EgoQuery
from repro.graph.dynamic_graph import DynamicGraph
from repro.serve.executors import make_executor
from repro.serve.messages import (
    Notification,
    OP_DRAIN,
    OP_READ,
    OP_STATS,
    OP_SUBSCRIBE,
    OP_UNSUBSCRIBE,
    OP_WRITE,
    R_ERR,
    R_OK,
    R_STOPPED,
    R_WRITE,
)
from repro.serve.shard import ShardSpec

NodeId = Hashable


class ServeError(Exception):
    """Raised when a shard reports an error or a reply times out."""


class _Call:
    """One awaited request: an event plus its result-or-error slot."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: Optional[str] = None


class _SubState:
    """Server-side per-subscriber delivery state."""

    __slots__ = ("queue", "stamp", "subscription")

    def __init__(self, subscription: "Subscription") -> None:
        self.queue = subscription._queue
        self.stamp = 0
        self.subscription = subscription


class Subscription:
    """A subscriber's handle: baseline snapshot + delivery queue.

    Notifications arrive in per-subscriber stamp order;
    :attr:`snapshot` holds the value of every subscribed ego at
    subscription time (the diffing baseline).
    """

    def __init__(self, subscriber: Hashable) -> None:
        self.subscriber = subscriber
        self.snapshot: Dict[NodeId, Any] = {}
        self._queue: "_queue.Queue[Notification]" = _queue.Queue()

    def get(self, timeout: Optional[float] = None) -> Optional[Notification]:
        """Next notification, blocking up to ``timeout`` (``None``: forever);
        returns ``None`` on timeout."""
        try:
            return self._queue.get(timeout=timeout)
        except _queue.Empty:
            return None

    def poll(self) -> List[Notification]:
        """Drain everything currently queued without blocking."""
        drained: List[Notification] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except _queue.Empty:
                return drained

    @property
    def pending(self) -> int:
        """Number of undelivered notifications currently queued."""
        return self._queue.qsize()


class EAGrServer:
    """Front-end over K shard executors (see module docstring).

    Parameters
    ----------
    graph / query:
        As for :class:`~repro.core.engine.EAGrEngine`; the query's
        predicate (if any) is folded into the reader partition.
    num_shards:
        Number of shards.
    executor:
        ``"process"`` — one worker process per shard (true multi-core);
        ``"inprocess"`` — shards run synchronously in the caller
        (deterministic; tests/CI).
    assign:
        Optional reader→shard assignment (defaults to a stable hash);
        locality-aware assignments cut the write replication factor.
    queue_depth:
        Request-queue bound per shard — the backpressure window.
    coalesce_max:
        Outbox size that forces a blocking flush on a backed-up shard.
    mp_context:
        Start method for process executors (``spawn`` default).
    reply_timeout:
        Seconds to wait for any single shard reply before raising
        :class:`ServeError`.
    value_store / engine_kwargs:
        Forwarded to every shard's engine.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        query: EgoQuery,
        num_shards: int = 2,
        executor: str = "process",
        assign: Optional[Callable[[NodeId], int]] = None,
        queue_depth: int = 8,
        coalesce_max: int = 8192,
        mp_context: str = "spawn",
        reply_timeout: float = 120.0,
        value_store: str = "auto",
        **engine_kwargs: Any,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        from repro.core.partitioned import partition_readers

        self.graph = graph
        self.query = query
        self.num_shards = num_shards
        self.executor_kind = executor
        self._coalesce_max = coalesce_max
        self._reply_timeout = reply_timeout

        #: reader node -> owning shard (the user predicate already applied;
        #: same partition semantics as PartitionedEngine).
        self.reader_shard = partition_readers(graph, query, num_shards, assign)
        shard_readers: List[set] = [set() for _ in range(num_shards)]
        for node, shard_id in self.reader_shard.items():
            shard_readers[shard_id].add(node)

        # writer node -> shards whose readers aggregate it (multicast table).
        routing: Dict[NodeId, Dict[int, None]] = {}
        for reader, shard_id in self.reader_shard.items():
            for writer in query.neighborhood(graph, reader):
                routing.setdefault(writer, {})[shard_id] = None
        self.writer_shards: Dict[NodeId, Tuple[int, ...]] = {
            w: tuple(s) for w, s in routing.items()
        }

        # -- per-request bookkeeping (shared with drainer threads) -------
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._pending: Dict[int, _Call] = {}
        self._pending_lock = threading.Lock()
        self._subs: Dict[Hashable, _SubState] = {}
        self._subs_lock = threading.Lock()
        self._async_errors: List[str] = []
        self._outbox: List[List[Tuple]] = [[] for _ in range(num_shards)]
        self._route_lock = threading.Lock()
        # One flush lock per shard, held across outbox-pop *and* submit:
        # without it a reader's blocking flush could observe an empty
        # outbox while a preempted producer still holds popped-but-not-
        # submitted writes, breaking read-your-writes (and two racing
        # flushes could enqueue batches out of acceptance order).
        self._flush_locks = [threading.Lock() for _ in range(num_shards)]
        self._clock = 0.0
        self._closed = False

        self.writes_sent = 0
        self.writes_delivered = 0
        self.notifications_delivered = 0
        self.coalesced_flushes = 0

        self.specs = [
            ShardSpec(
                graph,
                query,
                shard_id=shard_id,
                num_shards=num_shards,
                readers=frozenset(shard_readers[shard_id]),
                value_store=value_store,
                engine_kwargs=engine_kwargs,
            )
            for shard_id in range(num_shards)
        ]
        self._executors = [
            make_executor(
                executor,
                spec,
                self._reply_handler(spec.shard_id),
                queue_depth=queue_depth,
                mp_context=mp_context,
            )
            for spec in self.specs
        ]
        # Background flusher: a refused non-blocking flush parks writes in
        # the outbox; without a retry they would sit there until the next
        # caller-driven flush, stalling notifications for an idle
        # producer.  This thread retries non-empty outboxes every
        # ``flush_interval`` seconds, bounding coalescing latency.
        self._flush_interval = 0.05
        self._stop_flusher = threading.Event()
        self._flusher = threading.Thread(
            target=self._flush_loop, name="eagr-server-flusher", daemon=True
        )
        self._flusher.start()

    def _flush_loop(self) -> None:
        failed: set = set()
        while not self._stop_flusher.wait(self._flush_interval):
            for shard_id in range(self.num_shards):
                if shard_id in failed or not self._outbox[shard_id]:
                    continue
                try:
                    self._flush_shard(shard_id, block=False)
                except Exception:  # noqa: BLE001 - surfaced via drain/close
                    # One dead shard must not disable retries for the
                    # healthy ones; stop touching it, keep flushing the rest.
                    failed.add(shard_id)
                    self._async_errors.append(
                        f"shard {shard_id}: background flush failed"
                    )

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _reply_handler(self, shard_id: int) -> Callable[[Tuple], None]:
        def handle(reply: Tuple) -> None:
            kind = reply[0]
            if kind == R_WRITE:
                self._deliver(shard_id, reply[3])
                return
            if kind == R_STOPPED:
                return
            seq = reply[1]
            with self._pending_lock:
                call = self._pending.pop(seq, None)
            if call is None:
                if kind == R_ERR:
                    # A fire-and-forget write batch failed; surface it on
                    # the next drain()/close() instead of losing it.
                    self._async_errors.append(f"shard {shard_id}: {reply[2]}")
                return
            if kind == R_ERR:
                call.error = f"shard {shard_id}: {reply[2]}"
            else:
                call.result = reply[2]
            call.event.set()

        return handle

    def _deliver(self, shard_id: int, notices: Sequence[Tuple]) -> None:
        """Route shard notices into subscriber queues, stamping monotonically."""
        if not notices:
            return
        with self._subs_lock:
            for subscriber, ego, value, batch in notices:
                state = self._subs.get(subscriber)
                if state is None:  # unsubscribed while the notice was in flight
                    continue
                state.stamp += 1
                state.queue.put(
                    Notification(
                        subscriber=subscriber,
                        ego=ego,
                        value=value,
                        stamp=state.stamp,
                        shard=shard_id,
                        batch=batch,
                    )
                )
                self.notifications_delivered += 1

    def _submit_call(self, shard_id: int, op: int, *payload: Any) -> _Call:
        seq = self._next_seq()
        call = _Call()
        with self._pending_lock:
            self._pending[seq] = call
        self._executors[shard_id].submit((op, seq, *payload))
        return call

    def _await(self, calls: Sequence[_Call]) -> List[Any]:
        results = []
        for call in calls:
            if not call.event.wait(timeout=self._reply_timeout):
                raise ServeError("timed out waiting for a shard reply")
            if call.error is not None:
                raise ServeError(call.error)
            results.append(call.result)
        return results

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("EAGrServer is closed")

    # ------------------------------------------------------------------
    # writes (multicast, coalescing, backpressure)
    # ------------------------------------------------------------------

    def write_batch(self, writes: Sequence) -> int:
        """Accept a batch of writes; returns the number accepted.

        Each write is stamped with a server-monotone timestamp when it
        carries none (so cross-shard time windows stay coherent), then
        multicast into the outboxes of every shard whose readers need its
        writer.  Outboxes flush without blocking; a backed-up shard's
        writes coalesce until :attr:`coalesce_max` forces backpressure.
        """
        self._check_open()
        writer_shards = self.writer_shards
        touched: Dict[int, None] = {}
        count = 0
        with self._route_lock:
            outbox = self._outbox
            clock = self._clock
            for item in writes:
                node, value, timestamp = normalize_write(item)
                count += 1
                if timestamp is None:
                    timestamp = clock = clock + 1.0
                elif timestamp > clock:
                    clock = timestamp
                shards = writer_shards.get(node)
                if not shards:
                    continue  # no reader anywhere aggregates this writer
                triple = (node, value, timestamp)
                for shard_id in shards:
                    outbox[shard_id].append(triple)
                    touched[shard_id] = None
            self._clock = clock
            self.writes_sent += count
        for shard_id in touched:
            self._flush_shard(shard_id, block=False)
        return count

    def _flush_shard(self, shard_id: int, block: bool) -> None:
        with self._flush_locks[shard_id]:
            items = self._take_outbox(shard_id)
            if items is None:
                return
            request = (OP_WRITE, self._next_seq(), items)
            ex = self._executors[shard_id]
            if block:
                ex.submit(request)
                return
            if ex.try_submit(request):
                return
            # Shard backed up: coalesce into the outbox; later flushes (or
            # the cap) carry these items in one bigger batch.
            with self._route_lock:
                self._outbox[shard_id] = items + self._outbox[shard_id]
                self.writes_delivered -= len(items)
                pending = len(self._outbox[shard_id])
            self.coalesced_flushes += 1
            if pending >= self._coalesce_max:
                items = self._take_outbox(shard_id)
                if items is not None:
                    ex.submit((OP_WRITE, self._next_seq(), items))

    def _take_outbox(self, shard_id: int) -> Optional[List[Tuple]]:
        """Pop a shard's outbox (caller holds that shard's flush lock)."""
        with self._route_lock:
            items = self._outbox[shard_id]
            if not items:
                return None
            self._outbox[shard_id] = []
            self.writes_delivered += len(items)
        return items

    def flush(self) -> None:
        """Force every outbox into its shard queue (blocking on full queues)."""
        for shard_id in range(self.num_shards):
            self._flush_shard(shard_id, block=True)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read(self, node: NodeId) -> Any:
        """Evaluate the query at one node."""
        return self.read_batch([node])[0]

    def read_batch(self, nodes: Sequence[NodeId]) -> List[Any]:
        """Evaluate the query at each node, preserving input order.

        Flushes the involved shards' outboxes first, so a read observes
        every write this server accepted before the call (per-shard FIFO
        read-your-writes).
        """
        self._check_open()
        nodes = list(nodes)
        aggregate = self.query.aggregate
        identity = aggregate.finalize(aggregate.identity())
        results: List[Any] = [identity] * len(nodes)
        per_shard: Dict[int, List[int]] = {}
        for position, node in enumerate(nodes):
            shard_id = self.reader_shard.get(node)
            if shard_id is not None:
                per_shard.setdefault(shard_id, []).append(position)
        calls = []
        for shard_id, positions in per_shard.items():
            self._flush_shard(shard_id, block=True)
            calls.append(
                (
                    positions,
                    self._submit_call(
                        shard_id, OP_READ, [nodes[p] for p in positions]
                    ),
                )
            )
        for positions, call in calls:
            values = self._await([call])[0]
            for position, value in zip(positions, values):
                results[position] = value
        return results

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------

    def subscribe(self, subscriber: Hashable, nodes: Sequence[NodeId]) -> Subscription:
        """Turn reads on ``nodes`` into a standing query for ``subscriber``.

        Returns the subscriber's :class:`Subscription` (one per subscriber
        id; repeated calls extend it).  Its :attr:`~Subscription.snapshot`
        carries each ego's value at subscribe time — notifications then
        fire exactly for later changes.  Egos that no shard owns (filtered
        out by the query predicate or absent from the graph) appear in the
        snapshot with the identity value and never notify.
        """
        self._check_open()
        nodes = list(nodes)
        with self._subs_lock:
            state = self._subs.get(subscriber)
            if state is None:
                state = _SubState(Subscription(subscriber))
                self._subs[subscriber] = state
            subscription = state.subscription
        aggregate = self.query.aggregate
        identity = aggregate.finalize(aggregate.identity())
        per_shard: Dict[int, List[NodeId]] = {}
        for node in nodes:
            shard_id = self.reader_shard.get(node)
            if shard_id is None:
                subscription.snapshot[node] = identity
            else:
                per_shard.setdefault(shard_id, []).append(node)
        calls = []
        for shard_id, shard_nodes in per_shard.items():
            self._flush_shard(shard_id, block=True)
            calls.append(
                self._submit_call(shard_id, OP_SUBSCRIBE, subscriber, shard_nodes)
            )
        for snapshot in self._await(calls):
            subscription.snapshot.update(snapshot)
        return subscription

    def unsubscribe(
        self, subscriber: Hashable, nodes: Optional[Sequence[NodeId]] = None
    ) -> int:
        """Cancel ``subscriber``'s watches on ``nodes`` (``None``: all).

        Returns the number of (ego, shard) watches removed.  With
        ``nodes=None`` the subscriber's delivery queue is also retired —
        in-flight notifications for it are dropped.
        """
        self._check_open()
        calls = []
        if nodes is None:
            for shard_id in range(self.num_shards):
                calls.append(
                    self._submit_call(shard_id, OP_UNSUBSCRIBE, subscriber, None)
                )
        else:
            per_shard: Dict[int, List[NodeId]] = {}
            for node in nodes:
                shard_id = self.reader_shard.get(node)
                if shard_id is not None:
                    per_shard.setdefault(shard_id, []).append(node)
            for shard_id, shard_nodes in per_shard.items():
                calls.append(
                    self._submit_call(
                        shard_id, OP_UNSUBSCRIBE, subscriber, shard_nodes
                    )
                )
        removed = sum(self._await(calls))
        if nodes is None:
            with self._subs_lock:
                self._subs.pop(subscriber, None)
        return removed

    # ------------------------------------------------------------------
    # lifecycle and introspection
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Barrier: every accepted write is applied on every shard.

        Raises :class:`ServeError` if any fire-and-forget write batch
        failed since the previous barrier.
        """
        self._check_open()
        self.flush()
        calls = [
            self._submit_call(shard_id, OP_DRAIN)
            for shard_id in range(self.num_shards)
        ]
        self._await(calls)
        if self._async_errors:
            errors, self._async_errors = self._async_errors, []
            raise ServeError("; ".join(errors))

    def stats(self) -> List[Dict[str, Any]]:
        """Per-shard operational snapshots (counters, registry sizes)."""
        self._check_open()
        self.flush()
        calls = [
            self._submit_call(shard_id, OP_STATS)
            for shard_id in range(self.num_shards)
        ]
        return self._await(calls)

    @property
    def replication_factor(self) -> float:
        """Average shards per accepted write (the multicast overhead)."""
        if self.writes_sent == 0:
            total = sum(len(s) for s in self.writer_shards.values())
            return total / max(1, len(self.writer_shards))
        return self.writes_delivered / self.writes_sent

    def shard_sizes(self) -> List[int]:
        """Number of readers owned per shard."""
        sizes = [0] * self.num_shards
        for shard_id in self.reader_shard.values():
            sizes[shard_id] += 1
        return sizes

    def close(self) -> None:
        """Flush, stop every shard, release resources (idempotent).

        Closing flushes rather than drops: writes accepted before the
        call are applied before the shard workers exit (the stop request
        rides the same FIFO queue).  Raises :class:`ServeError` after the
        shutdown completes if any fire-and-forget write batch failed
        since the last :meth:`drain` — those writes were lost and the
        caller must learn about it.
        """
        if self._closed:
            return
        self._stop_flusher.set()
        self._flusher.join(timeout=5.0)
        try:
            self.flush()
        finally:
            self._closed = True
            for ex in self._executors:
                ex.stop(self._next_seq())
        if self._async_errors:
            # Fire-and-forget write failures since the last drain():
            # shutdown completed, but the caller must learn about them.
            errors, self._async_errors = self._async_errors, []
            raise ServeError("; ".join(errors))

    def __enter__(self) -> "EAGrServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> str:
        """One-line summary of the deployment."""
        return (
            f"EAGrServer(shards={self.num_shards}, executor={self.executor_kind}, "
            f"readers={self.shard_sizes()}, "
            f"replication={self.replication_factor:.2f})"
        )
