"""Where a shard runs: worker process or in-process, one interface.

Both executors push request tuples at a shard and deliver reply tuples to
an ``on_reply`` callback:

* :class:`ProcessShardExecutor` — the real deployment shape.  The shard
  host lives in its own **worker process** (``multiprocessing``, spawn
  context by default so the shard is fully reconstructed from pickled
  state — no fork-inherited locks or caches), fed by a *bounded* request
  queue: :meth:`try_submit` refuses instead of blocking when the shard is
  backed up (the front-end then coalesces), :meth:`submit` blocks — the
  deployment's backpressure.  A drainer thread pumps the reply queue into
  ``on_reply`` so the front-end never polls.
* :class:`InProcessShardExecutor` — same protocol, zero processes: every
  request executes synchronously on the caller's thread and the reply is
  delivered before ``submit`` returns.  Deterministic and dependency-free,
  this is the executor tests and CI smoke jobs run on.
* :class:`ShmShardExecutor` — a worker process fed through the shard's
  **shared-memory ingress ring** (:mod:`repro.serve.shm`) instead of a
  request queue: the front-end encodes request frames straight into the
  ring (FIFO — every queue-transport ordering guarantee carries over),
  the worker polls, and backpressure is ring space instead of queue
  depth.  Frames use the :mod:`repro.serve.frames` codec: packed write
  batches go in as raw ``K_WRITE`` record bytes (no pickling on either
  side), everything else as ``K_PICKLE`` fallback payloads.  Replies
  still ride an ``mp.Queue`` (they are rare on the hot path: write
  batches publish their applied watermark through the ring header and
  only reply when carrying notices or errors).

Every executor tallies its ingress codec mix and byte volume in ``io``
(``write_frames_binary`` / ``write_frames_pickle`` / ``control_frames``
/ ``ingress_bytes``), surfaced per shard by ``server_stats()``.

``on_reply`` may be invoked from a drainer thread (process executor) or
the submitting thread (in-process); the front-end's handler is written to
be thread-safe either way.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.core.statestore import WriteFrame
from repro.serve import frames as _frames
from repro.serve.messages import OP_STOP, OP_WRITE, R_STOPPED
from repro.serve.shard import ShardSpec, shard_worker, shard_worker_shm

OnReply = Callable[[Tuple], None]


def _io_counters() -> Dict[str, int]:
    """Fresh per-executor ingress codec/byte counters.

    ``ring_stalls`` counts rejected pushes (ring full / depth bound hit
    — the frame parks in the outbox) and ``doorbell_rings`` the actual
    wake-up bytes sent; both stay 0 on non-shm transports.
    """
    return {
        "ingress_bytes": 0,
        "write_frames_binary": 0,
        "write_frames_pickle": 0,
        "control_frames": 0,
        "ring_stalls": 0,
        "doorbell_rings": 0,
    }


def _tally_request(io: Dict[str, int], request: Tuple) -> None:
    """Count one accepted request in an executor's codec-mix counters.

    Queue/in-process transports move objects, not encoded payloads, so
    only binary frames have a meaningful byte count (their raw record
    bytes); pickled requests count codec-only.
    """
    if request[0] == OP_WRITE:
        items = request[3]
        if items.__class__ is WriteFrame:
            io["write_frames_binary"] += 1
            io["ingress_bytes"] += items.nbytes
        else:
            io["write_frames_pickle"] += 1
    else:
        io["control_frames"] += 1


class InProcessShardExecutor:
    """Run a shard synchronously inside the calling process.

    Crash semantics mirror the worker-process executor so the fault
    harness can drive both through one interface: :meth:`kill` (or a
    triggered ``spec.faults`` kill point) discards the live host — all
    in-memory shard state is lost, exactly like a dead worker — after
    which :meth:`try_submit` refuses, :meth:`submit` raises, and
    :meth:`alive` is ``False`` until the front-end rebuilds the shard
    from its spec + checkpoint.
    """

    kind = "inprocess"

    def __init__(self, spec: ShardSpec, on_reply: OnReply, queue_depth: int = 0) -> None:
        self.shard_id = spec.shard_id
        self._host = spec.build()
        self._on_reply = on_reply
        self.io = _io_counters()
        # The queue transports serialize requests through the worker's
        # single-threaded loop; synchronous execution must provide the
        # same contract explicitly, or concurrent front-end callers
        # (e.g. the gateway's call pool) interleave inside the shard
        # host and corrupt its unguarded state.  RLock: a reply hook
        # re-entering submit on the same thread must not self-deadlock.
        self._lock = threading.RLock()
        self._stopped = False
        self._crashed = False
        faults = spec.faults or {}
        self._exit_before = faults.get("exit_before_writes")
        self._exit_after = faults.get("exit_after_writes")
        self._writes_seen = 0

    @property
    def host(self):
        """The live shard host (introspection for tests and examples)."""
        return self._host

    def flush_bell(self) -> None:
        """No-op: synchronous execution needs no wake-up signal."""

    def try_submit(self, request: Tuple) -> bool:
        """Execute immediately; refuses only when the shard has crashed."""
        with self._lock:
            if self._crashed:
                return False
            self.submit(request)
            return True

    def submit(self, request: Tuple) -> None:
        with self._lock:
            if self._crashed:
                raise RuntimeError(f"shard {self.shard_id} worker died")
            if self._stopped:
                raise RuntimeError(f"shard {self.shard_id} executor is stopped")
            _tally_request(self.io, request)
            if request[0] == OP_WRITE:
                self._writes_seen += 1
                if (
                    self._exit_before is not None
                    and self._writes_seen >= self._exit_before
                ):
                    self.kill()  # batch received, never applied
                    return
            reply = self._host.handle(request)
            if (
                request[0] == OP_WRITE
                and self._exit_after is not None
                and self._writes_seen >= self._exit_after
            ):
                self.kill()  # batch applied, reply lost
                return
            if reply[0] == R_STOPPED:
                self._stopped = True
            self._on_reply(reply)

    def stop(self, seq: int, timeout: float = 10.0) -> None:
        """Acknowledge a stop request (idempotent)."""
        if not self._stopped and not self._crashed:
            self.submit((OP_STOP, seq))

    def kill(self) -> None:
        """Simulate an unclean worker death: the host (and every bit of
        its in-memory state) is discarded without flush or reply."""
        self._crashed = True
        self._host = None

    def alive(self) -> bool:
        return not self._stopped and not self._crashed


class ProcessShardExecutor:
    """Run a shard in a dedicated worker process (spawn-safe).

    Parameters
    ----------
    spec:
        Pickled to the worker, which builds the shard there.
    on_reply:
        Invoked on this executor's drainer thread for every reply.
    queue_depth:
        Bound of the request queue — the backpressure window.  ``0`` means
        unbounded (not recommended for write-heavy streams).
    mp_context:
        ``multiprocessing`` start method.  ``spawn`` (default) is the
        portable, state-clean choice; ``fork`` starts faster on POSIX but
        inherits the parent's whole heap.
    """

    kind = "process"

    def __init__(
        self,
        spec: ShardSpec,
        on_reply: OnReply,
        queue_depth: int = 8,
        mp_context: str = "spawn",
    ) -> None:
        import multiprocessing

        self.shard_id = spec.shard_id
        self._on_reply = on_reply
        self.io = _io_counters()
        ctx = multiprocessing.get_context(mp_context)
        self._requests = ctx.Queue(queue_depth) if queue_depth else ctx.Queue()
        self._replies = ctx.Queue()
        self._process = ctx.Process(
            target=shard_worker,
            args=(spec, self._requests, self._replies),
            name=f"eagr-shard-{spec.shard_id}",
            daemon=True,
        )
        self._process.start()
        self._drainer = threading.Thread(
            target=self._drain_replies,
            name=f"eagr-shard-{spec.shard_id}-drainer",
            daemon=True,
        )
        self._drainer.start()
        self._stopped = False

    def _drain_replies(self) -> None:
        import queue as _queue

        while True:
            try:
                reply = self._replies.get(timeout=0.5)
            except _queue.Empty:
                # A worker that died without acknowledging OP_STOP sends
                # nothing more; once it is gone and the queue is drained,
                # parking here forever would stall stop()'s join.
                if not self._process.is_alive():
                    return
                continue
            self._on_reply(reply)
            if reply[0] == R_STOPPED:
                return

    def flush_bell(self) -> None:
        """No-op: the queue's feeder thread wakes the worker by itself."""

    def try_submit(self, request: Tuple) -> bool:
        """Non-blocking submit; ``False`` when the shard is backed up.

        A stopped/killed executor also answers ``False`` rather than
        raising: to the coalescing front-end a dead worker is just a
        shard that is backed up until :meth:`EAGrServer.restart_shard`
        replaces it — writes park in the outbox instead of being lost.
        """
        import queue as _queue

        if self._stopped:
            return False
        try:
            self._requests.put_nowait(request)
        except _queue.Full:
            return False
        _tally_request(self.io, request)
        return True

    def submit(self, request: Tuple) -> None:
        """Blocking submit: waits for queue space (backpressure).

        Re-checks worker liveness once a second so a crashed shard (OOM,
        killed mid-apply) surfaces as an error instead of an unbounded
        hang on its never-draining queue.
        """
        import queue as _queue

        if self._stopped:
            raise RuntimeError(f"shard {self.shard_id} executor is stopped")
        while True:
            try:
                self._requests.put(request, timeout=1.0)
                _tally_request(self.io, request)
                return
            except _queue.Full:
                if not self._process.is_alive():
                    raise RuntimeError(
                        f"shard {self.shard_id} worker died with a full "
                        "request queue"
                    ) from None

    def stop(self, seq: int, timeout: float = 10.0) -> None:
        """Send ``OP_STOP``, join worker and drainer (idempotent).

        The stop request rides the same FIFO queue as everything else, so
        the worker flushes all earlier requests before acknowledging.
        """
        import queue as _queue

        if self._stopped:
            return
        self._stopped = True
        if self._process.is_alive():
            try:
                self._requests.put((OP_STOP, seq), timeout=timeout)
            except _queue.Full:  # dead/wedged worker: fall through to kill
                pass
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._drainer.join(timeout=timeout)

    def kill(self, timeout: float = 10.0) -> None:
        """Terminate the worker without flushing (crash injection).

        Unlike :meth:`stop`, queued requests are abandoned — exactly what
        a real worker death does.  The drainer exits once the process is
        gone and the reply queue is drained.  The front-end recovers by
        rebuilding the shard from its spec + checkpoint and replaying the
        redo log (:meth:`repro.serve.server.EAGrServer.restart_shard`).
        """
        self._stopped = True
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.kill()
            self._process.join(timeout=1.0)
        # The request queue's feeder thread may hold buffered items for a
        # reader that no longer exists; don't let interpreter shutdown
        # block on flushing them to a dead pipe.
        self._requests.cancel_join_thread()
        self._drainer.join(timeout=timeout)

    def alive(self) -> bool:
        return self._process.is_alive()


class ShmShardExecutor(ProcessShardExecutor):
    """Worker process fed through a shared-memory ingress ring.

    The ring object is owned by the front-end (it survives executor
    replacement across shard restarts — the server resets it and hands it
    to the successor); this executor only pushes frames and watches the
    worker.  ``submit``/``try_submit`` serialize on a push lock so the
    ring stays single-producer even with concurrent server threads
    (reads, subscribes, the background flusher).

    Unlike the queue executor — whose blocking ``submit`` only notices a
    dead worker once the queue fills — a blocking submit here fails fast
    whenever the worker is gone: ring space says nothing about liveness,
    and a frame pushed at a corpse would silently never apply (the
    server's redo log still has it; ``restart_shard`` replays).
    """

    kind = "shm"

    def __init__(
        self,
        spec: ShardSpec,
        on_reply: OnReply,
        ring,
        queue_depth: int = 8,
        mp_context: str = "spawn",
    ) -> None:
        import multiprocessing

        self.shard_id = spec.shard_id
        self._on_reply = on_reply
        self.io = _io_counters()
        self.ring = ring
        #: In-flight frame bound — the queue transport's depth semantics.
        #: Byte capacity alone would let a fast producer enqueue hundreds
        #: of small batches, defeating the outbox coalescing that keeps a
        #: lagging worker fed with few, large batches; 0 means unbounded.
        self._depth = queue_depth
        self._push_lock = threading.Lock()
        ctx = multiprocessing.get_context(mp_context)
        self._requests = None  # transport is the ring
        self._replies = ctx.Queue()
        # Doorbell: the worker parks on this pipe when the ring is empty;
        # _push rings it on every empty→non-empty transition (one syscall
        # per burst, none while frames keep flowing, no busy polling).
        bell_recv, self._bell = ctx.Pipe(duplex=False)
        self._process = ctx.Process(
            target=shard_worker_shm,
            args=(spec, ring.name, self._replies, bell_recv),
            name=f"eagr-shard-{spec.shard_id}",
            daemon=True,
        )
        self._process.start()
        self._drainer = threading.Thread(
            target=self._drain_replies,
            name=f"eagr-shard-{spec.shard_id}-drainer",
            daemon=True,
        )
        self._drainer.start()
        self._stopped = False
        self._bell_pending = False

    def _encode(self, request: Tuple) -> Tuple[bytes, str]:
        """``(ring payload, codec-counter key)`` for one request tuple."""
        if request[0] == OP_WRITE and request[3].__class__ is WriteFrame:
            return (
                _frames.encode_write(request[1], request[2], request[3]),
                "write_frames_binary",
            )
        return (
            _frames.encode_pickle(request),
            "write_frames_pickle" if request[0] == OP_WRITE else "control_frames",
        )

    def _push(self, payload: bytes, codec: str = "control_frames") -> bool:
        """Push one frame; the wake-up is *deferred* to :meth:`flush_bell`.

        Ringing per push would wake the worker mid-multicast and let the
        scheduler preempt the producing front-end between shard pushes
        (the queue transport avoids this accidentally — its feeder thread
        only writes the pipe once the producer drops the GIL).  Deferring
        the doorbell to the end of the caller's submission round keeps
        the producer's burst intact: one syscall per round, workers wake
        to a ring already holding everything.
        """
        with self._push_lock:
            if self._depth and self.ring.pending_frames >= self._depth:
                self.io["ring_stalls"] += 1
                return False
            if not self.ring.try_push(payload):
                self.io["ring_stalls"] += 1
                return False
            self._bell_pending = True
            io = self.io
            io[codec] += 1
            io["ingress_bytes"] += len(payload)
        return True

    def flush_bell(self) -> None:
        """Wake the worker for every frame pushed since the last flush.

        The byte is sent only while the worker is parked (or parking) on
        the doorbell — ``ring.waiting()`` — so pipe traffic is bounded at
        one byte per park cycle and a busy worker, which never drains the
        pipe, cannot back it up into a blocking ``send_bytes``.  The
        announce-then-recheck order in the worker makes the gate safe: a
        worker that misses our frame during its recheck has already set
        the flag we test here.  Its 0.5 s poll timeout is the final
        backstop, so a missed flush costs latency, never progress.
        """
        if not self._bell_pending:
            return
        with self._push_lock:
            if not self._bell_pending:
                return
            self._bell_pending = False
        if not self.ring.waiting():
            return  # worker is processing; it will see the frames itself
        try:
            self._bell.send_bytes(b"!")
            self.io["doorbell_rings"] += 1
        except (BrokenPipeError, OSError):  # pragma: no cover - dead worker
            pass

    def try_submit(self, request: Tuple) -> bool:
        """Non-blocking push; ``False`` when the ring is full or the
        worker is stopped/dead (writes then park in the outbox, exactly
        like a backed-up queue shard)."""
        if self._stopped or not self._process.is_alive():
            return False
        payload, codec = self._encode(request)
        return self._push(payload, codec)

    def submit(self, request: Tuple) -> None:
        """Blocking push: waits for ring space; fails fast on a corpse."""
        if self._stopped:
            raise RuntimeError(f"shard {self.shard_id} executor is stopped")
        payload, codec = self._encode(request)
        while True:
            if not self._process.is_alive():
                raise RuntimeError(
                    f"shard {self.shard_id} worker died; ingress ring "
                    "abandoned until restart"
                )
            if self._push(payload, codec):
                return
            # Ring full: make sure the worker is awake to drain it.
            self.flush_bell()
            time.sleep(0.0005)

    def stop(self, seq: int, timeout: float = 10.0) -> None:
        """Push ``OP_STOP``, join worker and drainer (idempotent)."""
        if self._stopped:
            return
        self._stopped = True
        payload = _frames.encode_pickle((OP_STOP, seq))
        deadline = time.monotonic() + timeout
        while self._process.is_alive():
            if self._push(payload):
                self.flush_bell()
                break
            self.flush_bell()
            if time.monotonic() >= deadline:
                break
            time.sleep(0.001)
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._drainer.join(timeout=timeout)
        self._bell.close()

    def kill(self, timeout: float = 10.0) -> None:
        """Terminate the worker without flushing (crash injection)."""
        self._stopped = True
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.kill()
            self._process.join(timeout=1.0)
        self._drainer.join(timeout=timeout)
        self._bell.close()


EXECUTOR_KINDS = {
    "process": ProcessShardExecutor,
    "inprocess": InProcessShardExecutor,
    "shm": ShmShardExecutor,
}


def make_executor(
    kind: str,
    spec: ShardSpec,
    on_reply: OnReply,
    queue_depth: int = 8,
    mp_context: str = "spawn",
    ring=None,
):
    """Instantiate the executor ``kind`` for ``spec`` (see module doc)."""
    if kind == "process":
        return ProcessShardExecutor(
            spec, on_reply, queue_depth=queue_depth, mp_context=mp_context
        )
    if kind == "inprocess":
        return InProcessShardExecutor(spec, on_reply, queue_depth=queue_depth)
    if kind == "shm":
        if ring is None:
            raise ValueError("shm executor requires the shard's ingress ring")
        return ShmShardExecutor(
            spec, on_reply, ring, queue_depth=queue_depth, mp_context=mp_context
        )
    raise ValueError(
        f"executor must be one of {sorted(EXECUTOR_KINDS)}, got {kind!r}"
    )
