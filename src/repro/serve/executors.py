"""Where a shard runs: worker process or in-process, one interface.

Both executors push request tuples at a shard and deliver reply tuples to
an ``on_reply`` callback:

* :class:`ProcessShardExecutor` — the real deployment shape.  The shard
  host lives in its own **worker process** (``multiprocessing``, spawn
  context by default so the shard is fully reconstructed from pickled
  state — no fork-inherited locks or caches), fed by a *bounded* request
  queue: :meth:`try_submit` refuses instead of blocking when the shard is
  backed up (the front-end then coalesces), :meth:`submit` blocks — the
  deployment's backpressure.  A drainer thread pumps the reply queue into
  ``on_reply`` so the front-end never polls.
* :class:`InProcessShardExecutor` — same protocol, zero processes: every
  request executes synchronously on the caller's thread and the reply is
  delivered before ``submit`` returns.  Deterministic and dependency-free,
  this is the executor tests and CI smoke jobs run on.

``on_reply`` may be invoked from a drainer thread (process executor) or
the submitting thread (in-process); the front-end's handler is written to
be thread-safe either way.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Tuple

from repro.serve.messages import OP_STOP, OP_WRITE, R_STOPPED
from repro.serve.shard import ShardSpec, shard_worker

OnReply = Callable[[Tuple], None]


class InProcessShardExecutor:
    """Run a shard synchronously inside the calling process.

    Crash semantics mirror the worker-process executor so the fault
    harness can drive both through one interface: :meth:`kill` (or a
    triggered ``spec.faults`` kill point) discards the live host — all
    in-memory shard state is lost, exactly like a dead worker — after
    which :meth:`try_submit` refuses, :meth:`submit` raises, and
    :meth:`alive` is ``False`` until the front-end rebuilds the shard
    from its spec + checkpoint.
    """

    kind = "inprocess"

    def __init__(self, spec: ShardSpec, on_reply: OnReply, queue_depth: int = 0) -> None:
        self.shard_id = spec.shard_id
        self._host = spec.build()
        self._on_reply = on_reply
        self._stopped = False
        self._crashed = False
        faults = spec.faults or {}
        self._exit_before = faults.get("exit_before_writes")
        self._exit_after = faults.get("exit_after_writes")
        self._writes_seen = 0

    @property
    def host(self):
        """The live shard host (introspection for tests and examples)."""
        return self._host

    def try_submit(self, request: Tuple) -> bool:
        """Execute immediately; refuses only when the shard has crashed."""
        if self._crashed:
            return False
        self.submit(request)
        return True

    def submit(self, request: Tuple) -> None:
        if self._crashed:
            raise RuntimeError(f"shard {self.shard_id} worker died")
        if self._stopped:
            raise RuntimeError(f"shard {self.shard_id} executor is stopped")
        if request[0] == OP_WRITE:
            self._writes_seen += 1
            if (
                self._exit_before is not None
                and self._writes_seen >= self._exit_before
            ):
                self.kill()  # batch received, never applied
                return
        reply = self._host.handle(request)
        if (
            request[0] == OP_WRITE
            and self._exit_after is not None
            and self._writes_seen >= self._exit_after
        ):
            self.kill()  # batch applied, reply lost
            return
        if reply[0] == R_STOPPED:
            self._stopped = True
        self._on_reply(reply)

    def stop(self, seq: int, timeout: float = 10.0) -> None:
        """Acknowledge a stop request (idempotent)."""
        if not self._stopped and not self._crashed:
            self.submit((OP_STOP, seq))

    def kill(self) -> None:
        """Simulate an unclean worker death: the host (and every bit of
        its in-memory state) is discarded without flush or reply."""
        self._crashed = True
        self._host = None

    def alive(self) -> bool:
        return not self._stopped and not self._crashed


class ProcessShardExecutor:
    """Run a shard in a dedicated worker process (spawn-safe).

    Parameters
    ----------
    spec:
        Pickled to the worker, which builds the shard there.
    on_reply:
        Invoked on this executor's drainer thread for every reply.
    queue_depth:
        Bound of the request queue — the backpressure window.  ``0`` means
        unbounded (not recommended for write-heavy streams).
    mp_context:
        ``multiprocessing`` start method.  ``spawn`` (default) is the
        portable, state-clean choice; ``fork`` starts faster on POSIX but
        inherits the parent's whole heap.
    """

    kind = "process"

    def __init__(
        self,
        spec: ShardSpec,
        on_reply: OnReply,
        queue_depth: int = 8,
        mp_context: str = "spawn",
    ) -> None:
        import multiprocessing

        self.shard_id = spec.shard_id
        self._on_reply = on_reply
        ctx = multiprocessing.get_context(mp_context)
        self._requests = ctx.Queue(queue_depth) if queue_depth else ctx.Queue()
        self._replies = ctx.Queue()
        self._process = ctx.Process(
            target=shard_worker,
            args=(spec, self._requests, self._replies),
            name=f"eagr-shard-{spec.shard_id}",
            daemon=True,
        )
        self._process.start()
        self._drainer = threading.Thread(
            target=self._drain_replies,
            name=f"eagr-shard-{spec.shard_id}-drainer",
            daemon=True,
        )
        self._drainer.start()
        self._stopped = False

    def _drain_replies(self) -> None:
        import queue as _queue

        while True:
            try:
                reply = self._replies.get(timeout=0.5)
            except _queue.Empty:
                # A worker that died without acknowledging OP_STOP sends
                # nothing more; once it is gone and the queue is drained,
                # parking here forever would stall stop()'s join.
                if not self._process.is_alive():
                    return
                continue
            self._on_reply(reply)
            if reply[0] == R_STOPPED:
                return

    def try_submit(self, request: Tuple) -> bool:
        """Non-blocking submit; ``False`` when the shard is backed up.

        A stopped/killed executor also answers ``False`` rather than
        raising: to the coalescing front-end a dead worker is just a
        shard that is backed up until :meth:`EAGrServer.restart_shard`
        replaces it — writes park in the outbox instead of being lost.
        """
        import queue as _queue

        if self._stopped:
            return False
        try:
            self._requests.put_nowait(request)
            return True
        except _queue.Full:
            return False

    def submit(self, request: Tuple) -> None:
        """Blocking submit: waits for queue space (backpressure).

        Re-checks worker liveness once a second so a crashed shard (OOM,
        killed mid-apply) surfaces as an error instead of an unbounded
        hang on its never-draining queue.
        """
        import queue as _queue

        if self._stopped:
            raise RuntimeError(f"shard {self.shard_id} executor is stopped")
        while True:
            try:
                self._requests.put(request, timeout=1.0)
                return
            except _queue.Full:
                if not self._process.is_alive():
                    raise RuntimeError(
                        f"shard {self.shard_id} worker died with a full "
                        "request queue"
                    ) from None

    def stop(self, seq: int, timeout: float = 10.0) -> None:
        """Send ``OP_STOP``, join worker and drainer (idempotent).

        The stop request rides the same FIFO queue as everything else, so
        the worker flushes all earlier requests before acknowledging.
        """
        import queue as _queue

        if self._stopped:
            return
        self._stopped = True
        if self._process.is_alive():
            try:
                self._requests.put((OP_STOP, seq), timeout=timeout)
            except _queue.Full:  # dead/wedged worker: fall through to kill
                pass
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=1.0)
        self._drainer.join(timeout=timeout)

    def kill(self, timeout: float = 10.0) -> None:
        """Terminate the worker without flushing (crash injection).

        Unlike :meth:`stop`, queued requests are abandoned — exactly what
        a real worker death does.  The drainer exits once the process is
        gone and the reply queue is drained.  The front-end recovers by
        rebuilding the shard from its spec + checkpoint and replaying the
        redo log (:meth:`repro.serve.server.EAGrServer.restart_shard`).
        """
        self._stopped = True
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=timeout)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.kill()
            self._process.join(timeout=1.0)
        # The request queue's feeder thread may hold buffered items for a
        # reader that no longer exists; don't let interpreter shutdown
        # block on flushing them to a dead pipe.
        self._requests.cancel_join_thread()
        self._drainer.join(timeout=timeout)

    def alive(self) -> bool:
        return self._process.is_alive()


EXECUTOR_KINDS = {
    "process": ProcessShardExecutor,
    "inprocess": InProcessShardExecutor,
}


def make_executor(
    kind: str,
    spec: ShardSpec,
    on_reply: OnReply,
    queue_depth: int = 8,
    mp_context: str = "spawn",
):
    """Instantiate the executor ``kind`` for ``spec`` (see module doc)."""
    if kind == "process":
        return ProcessShardExecutor(
            spec, on_reply, queue_depth=queue_depth, mp_context=mp_context
        )
    if kind == "inprocess":
        return InProcessShardExecutor(spec, on_reply, queue_depth=queue_depth)
    raise ValueError(
        f"executor must be one of {sorted(EXECUTOR_KINDS)}, got {kind!r}"
    )
