"""Whole-server write-ahead log: crash-consistent cold restart.

PR 4 made per-subscriber journals durable; everything else the front-end
knows — shard checkpoints, the redo log, the watch registry, its batch
counters — lived only in memory, so killing the ``EAGrServer`` process
erased all ingestion history.  :class:`WriteAheadLog` closes that gap:
the front-end appends every *accepted* write round, every batch-number
assignment, every :class:`~repro.serve.messages.ShardCheckpoint` and
every watch change to a CRC-framed, fsync-disciplined on-disk log, and a
cold ``EAGrServer(wal_dir=...)`` boot folds the log back into the exact
front-end state the dead process held — then rebuilds every shard from
its checkpoint and replays the redo suffix batch-exact through the
existing ``restart_shard()`` machinery, reproducing pre-crash
notification stamps precisely.

Record stream
-------------
Records are pickled tuples, one per frame:

* ``("META", info)`` — written once at log creation; ``info`` carries the
  deployment shape (``num_shards``) and the **persisted reader
  partition**, so a restarted front-end routes every replayed and future
  write to the same shard the dead epoch did.
* ``("W", wal_seq, {shard: items}, clock)`` — one *accepted* write round:
  the stamped ``(node, value, timestamp)`` triples each shard's outbox
  received, appended under the route lock (file order = acceptance
  order) and fsynced before ``write_batch`` returns — an acknowledged
  batch is durable.  With ``binary_frames`` on, ``items`` is a
  :class:`~repro.core.statestore.WriteFrame` whose pickled form is its
  raw record bytes, so replay rebuilds each round with one
  ``frombuffer`` instead of unpickling per-triple objects.
* ``("B", shard, batch_no, covered_seq)`` — a batch-number assignment:
  shard ``shard``'s batch ``batch_no`` consists of every accepted round
  with ``wal_seq`` in ``(previous covered_seq, covered_seq]``.  Logged
  *before* the enqueue (mirroring the in-memory redo log, so a batch the
  dying worker swallowed is still replayable); a refused non-blocking
  submit appends a compensating ``("RB", shard, batch_no)`` that returns
  the items to the pending pool, exactly like the live rollback path.
  ``B``/``RB`` are flushed but not fsynced: tearing one off only demotes
  its items to pending, and they renumber identically on recovery.
* ``("C", shard, ShardCheckpoint)`` — a shard checkpoint; folding one
  truncates that shard's redo entries at ``applied_through`` (this is
  what bounds both the log's replay suffix and the in-memory mirror).
* ``("S", subscriber, shard, nodes, shard_stamp)`` /
  ``("U", subscriber, nodes_or_None)`` — watch registry changes;
  ``shard_stamp`` persists the subscribe-time replay-filter seed so a
  recovered replay never delivers a pre-subscription change.
* ``("P", epoch, {reader: dst_shard}, {shard: ShardCheckpoint},
  {shard: triples})`` — a live reshard (``EAGrServer.reshard``): the
  reader moves, the synthetic post-splice checkpoint of every affected
  shard, and the re-routed residue (writes accepted before the swap that
  flush after it).  Appended under the route lock like ``W``, so the
  record stream is partition-consistent: every ``W`` before it replays
  under the old partition, every ``W`` after it under the new — recovery
  lands entirely before or entirely after the migration, never inside.
* ``("SNAP", WalState)`` — a compaction snapshot: the complete fold of
  everything before it (see below).

Framing and recovery
--------------------
Each frame is ``<II`` (payload length, CRC-32) + pickled payload.  A
crash can tear at most the tail frame of the *last* segment; the loader
detects any short read, CRC mismatch or unpicklable payload, truncates
the file there, and keeps the intact prefix — the same torn-tail idiom
as :mod:`repro.serve.journal`.  The record stream is ordered so a torn
tail is always *consistent*: a ``B`` follows its ``W`` rounds and a
``C`` follows the ``B`` records it covers, so losing a suffix can only
demote state (items become pending again), never corrupt it.

Segments and compaction
-----------------------
The log is a directory of ``wal-<n>.seg`` files.  Appends rotate to a
new segment past ``segment_bytes``; once every shard has a checkpoint
and the log exceeds ``compact_min_bytes``, :meth:`maybe_compact` writes
the folded :class:`WalState` as a single ``SNAP`` frame into the next
segment (write-to-temp, fsync, ``os.replace``, directory fsync — atomic)
and deletes the older segments.  Recovery picks the newest segment that
*starts* with a valid ``SNAP`` as its base, so a crash anywhere inside
compaction leaves either the old segments (before the rename) or the
snapshot (after) — never neither.

Single-writer discipline
------------------------
An exclusive ``flock`` on ``wal.lock`` guarantees one writing front-end
per log directory.  The kernel releases the lock when the holder dies —
however uncleanly — which is exactly the signal that lets a
:class:`~repro.serve.replica.ReplicaServer` promote itself.

Fault injection
---------------
The ``faults`` dict wires the disk failure modes the test harness
drives: ``torn_append_at`` (the N-th append writes a partial frame, then
crashes), ``crash_after_appends``, ``crash_in_compact`` (``"before_replace"``
or ``"after_replace"``), ``fsync_error_after`` (the N-th fsync raises
``OSError``; the log then *poisons itself fail-stop* — later appends
raise :class:`WalError` instead of silently accepting writes that would
not survive).  ``exit: True`` turns a crash point into a process-group
``SIGKILL`` (for sacrificial driver subprocesses); the default raises
:class:`WalCrash` so in-process unit tests can catch it.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from time import monotonic as _monotonic
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.statestore import WriteFrame
from repro.serve.frames import merge_items

_HEADER = struct.Struct("<II")
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".seg"
LOCK_NAME = "wal.lock"


class WalError(RuntimeError):
    """The log cannot accept the operation (poisoned after an fsync
    failure, closed, or structurally invalid)."""


class WalLockedError(WalError):
    """Another live process holds this log's writer lock."""


class WalCrash(RuntimeError):
    """An armed fault fired in raise mode (in-process crash simulation)."""


def _segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def _segment_index(name: str) -> Optional[int]:
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    try:
        return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
    except ValueError:
        return None


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(index, absolute path)`` for every segment file, sorted."""
    out = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        index = _segment_index(name)
        if index is not None:
            out.append((index, os.path.join(directory, name)))
    out.sort()
    return out


def encode_frame(record: Any) -> bytes:
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def read_frame(fh) -> Optional[Any]:
    """One record from ``fh``, or ``None`` on a clean EOF.

    Raises :class:`WalError` on a torn or corrupt frame (short header,
    short payload, CRC mismatch, unpicklable payload) — the caller
    decides whether that means truncate (writer recovery) or wait
    (replica tailing an in-progress append).
    """
    header = fh.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise WalError("torn frame header")
    length, crc = _HEADER.unpack(header)
    payload = fh.read(length)
    if len(payload) < length:
        raise WalError("torn frame payload")
    if zlib.crc32(payload) != crc:
        raise WalError("frame CRC mismatch")
    try:
        return pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 - any unpickle failure is a tear
        raise WalError(f"unpicklable frame: {error}") from error


class WalState:
    """The fold of a WAL prefix: everything a cold restart restores.

    Mirrors the front-end's durability bookkeeping exactly —
    per-shard batch counters and redo logs, the latest checkpoints, the
    accepted-but-unbatched rounds (a dead outbox's contents), the
    logical clock, and the watch registry with its per-ego replay-filter
    seeds.  The live :class:`WriteAheadLog` maintains one incrementally
    (``fold`` per append) so compaction can snapshot without re-reading
    its own segments; recovery and the replica build theirs by folding
    records off disk.  Redo entries and pending rounds are bounded by
    the checkpoint interval and the coalescing window respectively, so
    the mirror's memory is bounded too.
    """

    def __init__(self) -> None:
        self.num_shards: Optional[int] = None
        self.meta: Dict[str, Any] = {}
        self.reader_shard: Dict[Hashable, int] = {}
        self.clock = 0.0
        self.wal_seq = 0
        self.batch_no: Dict[int, int] = {}
        self.covered: Dict[int, int] = {}
        self.checkpoints: Dict[int, Any] = {}
        #: shard -> [(batch_no, items)] — batches since that shard's
        #: last checkpoint, in submit order (the replayable suffix).
        self.redo: Dict[int, List[Tuple[int, List[Tuple]]]] = {}
        #: shard -> [(wal_seq, items)] — accepted rounds no ``B`` record
        #: has covered yet (pending outbox contents at fold time).
        self.rounds: Dict[int, List[Tuple[int, List[Tuple]]]] = {}
        #: subscriber -> shard -> {ego: subscribe-time stamp seed}.
        self.watches: Dict[Hashable, Dict[int, Dict[Hashable, int]]] = {}

    def fold(self, record: Tuple) -> None:
        kind = record[0]
        if kind == "W":
            _kind, seq, per_shard, clock = record
            self.wal_seq = seq
            if clock > self.clock:
                self.clock = clock
            for shard_id, items in per_shard.items():
                self.rounds.setdefault(shard_id, []).append((seq, items))
        elif kind == "B":
            _kind, shard_id, batch_no, covered = record
            parts: List[Any] = []
            rounds = self.rounds.get(shard_id, [])
            keep = []
            for seq, round_items in rounds:
                if seq <= covered:
                    parts.append(round_items)
                else:
                    keep.append((seq, round_items))
            self.rounds[shard_id] = keep
            # Binary rounds concatenate array-to-array (no per-triple
            # work); mixed or pickled rounds materialize to one list.
            items = merge_items(parts)
            self.redo.setdefault(shard_id, []).append((batch_no, items))
            self.batch_no[shard_id] = batch_no
            self.covered[shard_id] = covered
        elif kind == "RB":
            # A non-blocking submit was refused after its ``B`` was
            # logged: undo the assignment — the items return to the
            # pending pool (at the head, where the live outbox re-queues
            # them) and the batch number will be re-issued.
            _kind, shard_id, batch_no = record
            redo = self.redo.get(shard_id)
            if not redo or redo[-1][0] != batch_no:
                raise WalError(
                    f"rollback of batch {batch_no} does not match the "
                    f"redo tail for shard {shard_id}"
                )
            _no, items = redo.pop()
            self.rounds.setdefault(shard_id, []).insert(
                0, (self.covered.get(shard_id, 0), items)
            )
            self.batch_no[shard_id] = batch_no - 1
        elif kind == "C":
            _kind, shard_id, ck = record
            self.checkpoints[shard_id] = ck
            self.redo[shard_id] = [
                entry
                for entry in self.redo.get(shard_id, [])
                if entry[0] > ck.applied_through
            ]
        elif kind == "S":
            _kind, subscriber, shard_id, nodes, stamp = record
            shard_watch = self.watches.setdefault(subscriber, {}).setdefault(
                shard_id, {}
            )
            for node in nodes:
                shard_watch.setdefault(node, stamp)
        elif kind == "U":
            _kind, subscriber, nodes = record
            if nodes is None:
                self.watches.pop(subscriber, None)
            else:
                shards = self.watches.get(subscriber)
                if shards:
                    for shard_watch in shards.values():
                        for node in nodes:
                            shard_watch.pop(node, None)
        elif kind == "P":
            _kind, epoch, moves, checkpoints, pending = record
            self.meta["partition_epoch"] = epoch
            for node, dst in moves.items():
                self.reader_shard[node] = dst
            for shard_id, ck in checkpoints.items():
                self.checkpoints[shard_id] = ck
                # The splice aligned every affected shard's batch counter
                # to the group max (= the synthetic ``applied_through``);
                # a recovered front-end must number new batches above it.
                self.batch_no[shard_id] = max(
                    self.batch_no.get(shard_id, 0), ck.applied_through
                )
                self.redo[shard_id] = [
                    entry
                    for entry in self.redo.get(shard_id, [])
                    if entry[0] > ck.applied_through
                ]
                # The re-routed residue *replaces* the shard's pending
                # rounds: the live swap popped the outboxes and re-filed
                # their contents under the new routing table.
                items = pending.get(shard_id) or []
                self.rounds[shard_id] = (
                    [(self.wal_seq, items)] if items else []
                )
            # Watch-registry egos migrate with their readers, keeping
            # their subscribe-time replay-filter seeds.
            for shards in self.watches.values():
                for node, dst in moves.items():
                    for shard_id, shard_watch in list(shards.items()):
                        if shard_id != dst and node in shard_watch:
                            shards.setdefault(dst, {})[node] = (
                                shard_watch.pop(node)
                            )
        elif kind == "META":
            _kind, info = record
            self.meta = dict(info)
            self.num_shards = info["num_shards"]
            self.reader_shard = info["reader_shard"]
        elif kind == "SNAP":
            other: WalState = record[1]
            self.__dict__.update(other.__dict__)
        else:
            raise WalError(f"unknown WAL record kind {kind!r}")

    def pending_items(self, shard_id: int) -> List[Tuple]:
        """Accepted-but-unbatched triples for ``shard_id`` (outbox refill).

        Always a plain list of triples — the outbox is append-mutable, so
        binary rounds materialize here (recovery-only, off the hot path).
        """
        items: List[Tuple] = []
        for _seq, round_items in self.rounds.get(shard_id, ()):
            if round_items.__class__ is WriteFrame:
                items.extend(round_items.tolist())
            else:
                items.extend(round_items)
        return items


def _fsync_dir(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX directory open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only, CRC-framed, segmented, single-writer WAL (see module
    docstring).

    Parameters
    ----------
    directory:
        The log directory (created if missing).  Existing segments are
        recovered on open: torn tail truncated, state folded, stray
        ``.tmp`` files and superseded segments removed.
    segment_bytes:
        Rotate to a fresh segment once the current one exceeds this.
    compact_min_bytes:
        :meth:`maybe_compact` is a no-op below this total size.
    fsync:
        ``False`` downgrades :meth:`sync` to a buffer flush — the log
        then survives process death (``kill -9``) but not power loss.
        The durability contract in PERFORMANCE.md spells this out.
    faults:
        Disk-fault injection plan (tests only); see module docstring.
    metrics:
        Optional dict of metric objects from the server's registry:
        ``append`` / ``fsync`` (latency histograms with an ``observe``
        method) and ``bytes`` (a gauge with ``set``, tracking total log
        bytes).  Absent keys — or ``None`` — leave the path untimed.
    """

    def __init__(
        self,
        directory: str,
        *,
        segment_bytes: int = 4 << 20,
        compact_min_bytes: int = 1 << 20,
        fsync: bool = True,
        faults: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.compact_min_bytes = compact_min_bytes
        self._fsync_enabled = fsync
        self.faults = dict(faults or {})
        metrics = metrics or {}
        self._m_append = metrics.get("append")
        self._m_fsync = metrics.get("fsync")
        self._m_bytes = metrics.get("bytes")
        self._appends = 0
        self._fsyncs = 0
        self._poisoned: Optional[str] = None
        self._lock = threading.Lock()
        self._file = None
        self._lock_fh = None
        os.makedirs(directory, exist_ok=True)
        self._acquire_lock()
        self.state = WalState()
        self._recover()

    # ------------------------------------------------------------------
    # open / recover
    # ------------------------------------------------------------------

    def _acquire_lock(self) -> None:
        path = os.path.join(self.directory, LOCK_NAME)
        self._lock_fh = open(path, "ab")
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            return
        try:
            fcntl.flock(self._lock_fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._lock_fh.close()
            self._lock_fh = None
            raise WalLockedError(
                f"another process holds the WAL writer lock in "
                f"{self.directory!r}"
            ) from None

    def _recover(self) -> None:
        # Stray compaction temp: the rename never happened, the old
        # segments are authoritative.
        for name in os.listdir(self.directory):
            if name.endswith(".tmp"):
                os.remove(os.path.join(self.directory, name))
        segments = list_segments(self.directory)
        base_at = 0
        for position in range(len(segments) - 1, -1, -1):
            if self._starts_with_snapshot(segments[position][1]):
                base_at = position
                break
        # Segments behind the snapshot base are superseded (a crash
        # between compaction's rename and its deletes leaves them).
        for _index, path in segments[:base_at]:
            os.remove(path)
        segments = segments[base_at:]
        for position, (_index, path) in enumerate(segments):
            torn_at = self._fold_segment(path)
            if torn_at is not None:
                with open(path, "r+b") as fh:
                    fh.truncate(torn_at)
                # A tear can only be the final write of a dead process;
                # anything filed after it is unreachable garbage.
                for _later, later_path in segments[position + 1:]:
                    os.remove(later_path)
                segments = segments[: position + 1]
                break
        self.recovered = self.state.num_shards is not None
        if segments:
            self._segment_index, self._segment_path = segments[-1]
            self._file = open(self._segment_path, "ab")
            self._tail_bytes = self._file.tell()
            self._base_bytes = sum(
                os.path.getsize(path) for _i, path in segments[:-1]
            )
        else:
            self._segment_index = 1
            self._segment_path = os.path.join(
                self.directory, _segment_name(1)
            )
            self._file = open(self._segment_path, "ab")
            self._tail_bytes = 0
            self._base_bytes = 0
            _fsync_dir(self.directory)

    @staticmethod
    def _starts_with_snapshot(path: str) -> bool:
        try:
            with open(path, "rb") as fh:
                record = read_frame(fh)
        except (WalError, OSError):
            return False
        return bool(record) and record[0] == "SNAP"

    def _fold_segment(self, path: str) -> Optional[int]:
        """Fold every intact frame of ``path``; return the tear offset
        (``None`` when the segment is clean)."""
        with open(path, "rb") as fh:
            while True:
                offset = fh.tell()
                try:
                    record = read_frame(fh)
                except WalError:
                    return offset
                if record is None:
                    return None
                self.state.fold(record)

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------

    def append(self, record: Tuple, sync: bool = False) -> None:
        """Fold ``record`` into the mirror and write one frame.

        The write is flushed to the OS (surviving process death); pass
        ``sync=True`` — or call :meth:`sync` after a group of appends —
        to force it to stable storage before acknowledging anything.
        """
        t0 = _monotonic() if self._m_append is not None else 0.0
        with self._lock:
            self._check_usable()
            self.state.fold(record)
            frame = encode_frame(record)
            self._appends += 1
            torn_at = self.faults.get("torn_append_at")
            if torn_at is not None and self._appends >= torn_at:
                # A short write followed by death: the signature torn-tail
                # crash the recovery path must absorb.
                self._file.write(frame[: max(1, len(frame) // 2)])
                self._file.flush()
                self._crash("torn append")
            self._file.write(frame)
            self._file.flush()
            self._tail_bytes += len(frame)
            crash_after = self.faults.get("crash_after_appends")
            if crash_after is not None and self._appends >= crash_after:
                self._crash("post-append crash")
            if sync:
                self._sync_locked()
            if self._tail_bytes >= self.segment_bytes:
                self._rotate_locked()
            if self._m_append is not None:
                self._m_append.observe(_monotonic() - t0)
            if self._m_bytes is not None:
                self._m_bytes.set(self._base_bytes + self._tail_bytes)

    def sync(self) -> None:
        """Force every accepted append to stable storage (fsync)."""
        with self._lock:
            self._check_usable()
            self._sync_locked()

    def _sync_locked(self) -> None:
        self._file.flush()
        if not self._fsync_enabled:
            return
        self._fsyncs += 1
        fail_at = self.faults.get("fsync_error_after")
        t0 = _monotonic() if self._m_fsync is not None else 0.0
        try:
            if fail_at is not None and self._fsyncs >= fail_at:
                raise OSError(5, "injected fsync failure")
            os.fsync(self._file.fileno())
            if self._m_fsync is not None:
                self._m_fsync.observe(_monotonic() - t0)
        except OSError as error:
            # Fail-stop: a log that cannot promise durability must stop
            # accepting writes, not degrade silently.
            self._poisoned = f"fsync failed: {error}"
            raise WalError(self._poisoned) from error

    def _rotate_locked(self) -> None:
        self._sync_locked()
        self._file.close()
        self._base_bytes += self._tail_bytes
        self._segment_index += 1
        self._segment_path = os.path.join(
            self.directory, _segment_name(self._segment_index)
        )
        self._file = open(self._segment_path, "ab")
        self._tail_bytes = 0
        _fsync_dir(self.directory)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        return self._base_bytes + self._tail_bytes

    @property
    def appends(self) -> int:
        """Records appended this process lifetime (not recovered ones)."""
        return self._appends

    @property
    def fsyncs(self) -> int:
        """fsync calls issued this process lifetime."""
        return self._fsyncs

    def maybe_compact(self, force: bool = False) -> bool:
        """Checkpoint-gated compaction: fold the whole log into one
        ``SNAP`` segment once every shard has a checkpoint (otherwise a
        snapshot would still drag the full redo history along) and the
        log has grown past ``compact_min_bytes``.  Returns whether a
        compaction ran."""
        with self._lock:
            self._check_usable()
            if self.state.num_shards is None:
                return False
            if len(self.state.checkpoints) < self.state.num_shards:
                return False
            if not force and self.total_bytes() < self.compact_min_bytes:
                return False
            self._compact_locked()
            return True

    def _compact_locked(self) -> None:
        self._sync_locked()
        old_segments = list_segments(self.directory)
        next_index = self._segment_index + 1
        final_path = os.path.join(self.directory, _segment_name(next_index))
        tmp_path = final_path + ".tmp"
        with open(tmp_path, "wb") as fh:
            fh.write(encode_frame(("SNAP", self.state)))
            fh.flush()
            if self._fsync_enabled:
                os.fsync(fh.fileno())
        if self.faults.get("crash_in_compact") == "before_replace":
            self._crash("compaction before rename")
        os.replace(tmp_path, final_path)
        _fsync_dir(self.directory)
        if self.faults.get("crash_in_compact") == "after_replace":
            self._crash("compaction after rename")
        self._file.close()
        for _index, path in old_segments:
            os.remove(path)
        _fsync_dir(self.directory)
        self._segment_index = next_index
        self._segment_path = final_path
        self._file = open(final_path, "ab")
        self._tail_bytes = self._file.tell()
        self._base_bytes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _check_usable(self) -> None:
        if self._file is None:
            raise WalError("WAL is closed")
        if self._poisoned is not None:
            raise WalError(f"WAL is poisoned fail-stop ({self._poisoned})")

    def _crash(self, what: str) -> None:
        if self.faults.get("exit"):
            import signal

            os.kill(0, signal.SIGKILL)  # the whole sacrificial process group
        raise WalCrash(what)

    def close(self) -> None:
        """Flush, fsync, release the writer lock (idempotent)."""
        if self._file is not None:
            try:
                if self._poisoned is None:
                    self._sync_locked()
            except WalError:
                pass
            self._file.close()
            self._file = None
        if self._lock_fh is not None:
            self._lock_fh.close()  # closing drops the flock
            self._lock_fh = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({self.directory!r}, segment={self._segment_index}, "
            f"bytes={self.total_bytes()}, appends={self._appends})"
        )


class WalTailer:
    """Incremental, read-only WAL follower (the replica's feed).

    Tracks a ``(segment, offset)`` cursor and yields every *complete*
    frame appended since the last poll.  A torn frame at the tail of the
    **newest** segment is an append in progress — the tailer waits
    (never truncates: it does not own the log).  When the cursor's
    segment has been compacted away (``FileNotFoundError``), the tailer
    restarts from the current snapshot base; consumers see the ``SNAP``
    record and rebuild from it, which makes the race with the primary's
    segment deletion self-healing.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._segment_index: Optional[int] = None
        self._offset = 0

    def poll(self, limit: Optional[int] = None) -> List[Tuple]:
        records: List[Tuple] = []
        while True:
            segments = list_segments(self.directory)
            if not segments:
                return records
            if self._segment_index is None or not any(
                index == self._segment_index for index, _p in segments
            ):
                # First attach, or our segment was compacted away:
                # restart from the newest snapshot base.
                base_at = 0
                for position in range(len(segments) - 1, -1, -1):
                    if WriteAheadLog._starts_with_snapshot(
                        segments[position][1]
                    ):
                        base_at = position
                        break
                self._segment_index = segments[base_at][0]
                self._offset = 0
            position = next(
                i for i, (index, _p) in enumerate(segments)
                if index == self._segment_index
            )
            path = segments[position][1]
            try:
                with open(path, "rb") as fh:
                    fh.seek(self._offset)
                    while limit is None or len(records) < limit:
                        offset = fh.tell()
                        try:
                            record = read_frame(fh)
                        except WalError:
                            record = None  # torn tail: wait for the writer
                        if record is None:
                            self._offset = offset
                            break
                        records.append(record)
                    else:
                        self._offset = fh.tell()
                        return records
            except FileNotFoundError:
                self._segment_index = None  # compacted under us: re-anchor
                continue
            if position + 1 < len(segments):
                # A newer segment exists, so this one is finished;
                # anything unparsed at its tail is dead garbage.
                self._segment_index = segments[position + 1][0]
                self._offset = 0
                continue
            return records
