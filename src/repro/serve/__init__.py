"""The sharded serving layer: continuous ego-centric aggregates as a service.

EAGr's queries are *standing* queries: a subscriber wants ``F(N(ego))``
pushed whenever the graph's content moves it (paper Section 2.1's
continuous mode).  This package turns the single-process engine into a
serving tier:

* :class:`~repro.serve.server.EAGrServer` — the front-end.  Partitions the
  reader space over shards, multicasts write batches to the shards that
  need them through message-coalescing queues with bounded backpressure,
  routes reads, and manages subscriptions.
* :mod:`~repro.serve.shard` — the shard side: a picklable
  :class:`~repro.serve.shard.ShardSpec` describing one shard's slice, and
  the :class:`~repro.serve.shard.ShardHost` that builds the shard's engine
  (columnar store + compiled plans) and serves its message loop.
* :mod:`~repro.serve.executors` — where a shard runs: in a worker
  **process** (``multiprocessing`` spawn, true multi-core) or in-process
  (deterministic, for tests and CI smoke).
* :mod:`~repro.serve.gateway` / :mod:`~repro.serve.client` — the network
  edge: :class:`~repro.serve.gateway.GatewayServer` multiplexes many TCP
  clients onto one front-end over a length-prefixed binary protocol
  (write batches travel as the same ``K_WRITE`` frames the shm ingress
  ring carries), with per-connection flow control mapped onto the
  journals; :class:`~repro.serve.client.EAGrClient` is the blocking
  client, :class:`~repro.serve.client.AsyncEAGrClient` the asyncio one.
* :mod:`~repro.serve.journal` — per-subscriber durable notification logs:
  bounded rings, optionally disk-backed, that make subscriptions
  resumable.
* :mod:`~repro.serve.wal` — the whole-server write-ahead log: every
  accepted write batch, checkpoint and watch change persisted
  (CRC-framed, fsync-disciplined, checkpoint-gated compaction), so
  ``EAGrServer(wal_dir=...)`` cold-restarts after ``kill -9`` with zero
  lost acknowledged batches and stamp-exact recovered state.
* :mod:`~repro.serve.replica` — a warm read-replica
  (:class:`~repro.serve.replica.ReplicaServer`) tailing the same WAL:
  staleness-bounded pull reads a bounded lag behind the primary, and
  promotion to a full primary when the old one dies (the kernel's
  ``flock`` release on the log is the death signal).

The delivery contract
---------------------
Subscriptions are diff-based: after each applied write batch a shard asks
its runtime for the changed-reader report (O(affected readers)), re-reads
exactly the watched egos among them, and emits a notice for every value
that actually moved.  The front-end stamps, journals, and delivers them
under one lock, which yields three guarantees:

1. **At-least-once live.**  A connected subscriber eventually receives a
   notification for every value change of a watched ego, with strictly
   monotone contiguous stamps (1, 2, 3, ...).  Crash windows can cause a
   change to be *re-derived* (a restarted shard diffs against its
   checkpointed baselines), but the front-end's per-ego value filter
   suppresses re-deliveries, so a subscriber never sees the same value
   twice in a row for an ego.
2. **Exactly-once-after-resume.**  Every stamped notification is appended
   to the subscriber's :class:`~repro.serve.journal.NotificationLog`
   *before* it is offered to the live queue.  A client that disconnects
   and reconnects with ``subscribe(..., resume_from=N)`` receives exactly
   the notifications with stamps ``> N`` — original stamps, original
   order, no gaps, no duplicates — replayed ahead of live deliveries in
   one atomic splice.
3. **Checkpoint / eviction semantics.**  Journals are bounded rings
   (``journal_capacity``): overflow evicts the oldest entries and moves
   the *resume horizon* forward; ``ack(subscriber, stamp)`` releases the
   acknowledged prefix early.  A ``resume_from`` behind the horizon — or
   ahead of everything the journal ever recorded — raises
   :class:`~repro.serve.journal.ResumeGapError` rather than replaying a
   gapped or regressing sequence; the client must re-baseline with a
   plain ``subscribe``.  With ``journal_dir`` set, logs are disk-backed
   (crash-tolerant appends, atomic compaction) and resume works across a
   front-end process restart.  On the ingestion side,
   :meth:`~repro.serve.server.EAGrServer.checkpoint` snapshots each
   shard's restart state and truncates its redo log;
   :meth:`~repro.serve.server.EAGrServer.restart_shard` rebuilds a dead
   worker from spec + checkpoint and replays the redo log idempotently.

``tests/serve/faultlib.py`` drives these guarantees adversarially:
deterministic worker kill points (die on receiving / after applying the
N-th batch), seeded operation schedules, and condition-based waits — see
its module docstring for how to script a crash.
"""

from repro.serve.client import AsyncEAGrClient, EAGrClient, GatewayClosed
from repro.serve.executors import InProcessShardExecutor, ProcessShardExecutor
from repro.serve.gateway import GatewayError, GatewayServer
from repro.serve.journal import NotificationLog, ResumeGapError
from repro.serve.messages import Notification, ShardCheckpoint
from repro.serve.replica import ReplicaServer, ReplicaError, StaleReadError
from repro.serve.reshard import (
    RebalancePolicy,
    ReshardPlan,
    plan_from_assignment,
    propose_rebalance,
)
from repro.serve.server import EAGrServer, ServeError, Subscription
from repro.serve.shard import ShardHost, ShardSpec
from repro.serve.wal import WalError, WalLockedError, WriteAheadLog

__all__ = [
    "AsyncEAGrClient",
    "EAGrClient",
    "EAGrServer",
    "GatewayClosed",
    "GatewayError",
    "GatewayServer",
    "InProcessShardExecutor",
    "Notification",
    "NotificationLog",
    "ProcessShardExecutor",
    "RebalancePolicy",
    "ReplicaError",
    "ReplicaServer",
    "ReshardPlan",
    "ResumeGapError",
    "ServeError",
    "ShardCheckpoint",
    "ShardHost",
    "ShardSpec",
    "StaleReadError",
    "Subscription",
    "WalError",
    "WalLockedError",
    "WriteAheadLog",
    "plan_from_assignment",
    "propose_rebalance",
]
