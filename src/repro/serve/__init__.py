"""The sharded serving layer: continuous ego-centric aggregates as a service.

EAGr's queries are *standing* queries: a subscriber wants ``F(N(ego))``
pushed whenever the graph's content moves it (paper Section 2.1's
continuous mode).  This package turns the single-process engine into a
serving tier:

* :class:`~repro.serve.server.EAGrServer` — the front-end.  Partitions the
  reader space over shards, multicasts write batches to the shards that
  need them through message-coalescing queues with bounded backpressure,
  routes reads, and manages subscriptions.
* :mod:`~repro.serve.shard` — the shard side: a picklable
  :class:`~repro.serve.shard.ShardSpec` describing one shard's slice, and
  the :class:`~repro.serve.shard.ShardHost` that builds the shard's engine
  (columnar store + compiled plans) and serves its message loop.
* :mod:`~repro.serve.executors` — where a shard runs: in a worker
  **process** (``multiprocessing`` spawn, true multi-core) or in-process
  (deterministic, for tests and CI smoke).

Subscriptions are diff-based: after each applied write batch a shard asks
its runtime for the changed-reader report (O(affected readers)), re-reads
exactly the watched egos among them, and pushes a
:class:`~repro.serve.messages.Notification` for every value that actually
moved — at-least-once, monotonically stamped per subscriber.
"""

from repro.serve.executors import InProcessShardExecutor, ProcessShardExecutor
from repro.serve.messages import Notification
from repro.serve.server import EAGrServer, ServeError, Subscription
from repro.serve.shard import ShardHost, ShardSpec

__all__ = [
    "EAGrServer",
    "InProcessShardExecutor",
    "Notification",
    "ProcessShardExecutor",
    "ServeError",
    "ShardHost",
    "ShardSpec",
    "Subscription",
]
