"""The serve tier's network edge: an asyncio TCP gateway over EAGrServer.

Until this module, every "client" of the serving stack was a Python
caller inside the front-end's address space.  :class:`GatewayServer`
turns the engine-with-a-server-shaped-API into a system with an actual
edge: it owns (a reference to) an :class:`~repro.serve.server.EAGrServer`
and multiplexes many concurrent TCP connections onto it, speaking the
length-prefixed binary protocol of :mod:`repro.serve.frames` — write
batches ride the wire as the same ``K_WRITE`` payloads the shm ingress
ring carries, and subscription streams come back as pickled-to-raw-bytes
:class:`~repro.serve.frames.NoteFrame` batches.  One gateway, one event
loop thread, no thread-per-connection, no thread-per-subscription.

Wire protocol (see ``PERFORMANCE.md`` for the frame table)::

    frame   := uint32 LE payload length | payload
    payload := kind byte | body

``K_WRITE``/``K_PICKLE`` payloads are write batches (the client's request
id rides the header's ``seq`` slot); ``K_HELLO``/``K_SUBSCRIBE``/
``K_READ``/``K_ACK`` are client control frames, ``K_OK``/``K_ERROR``
replies and ``K_NOTES`` the server-push stream.  Control bodies are
pickled tuples: the gateway is a trusted-perimeter edge — the same trust
domain as the shard transports — not an internet-facing protocol.

Flow control maps onto the server's own journal machinery instead of
buffering in the gateway.  Each connection has a bounded in-flight
budget (``max_inflight_bytes``): notification bytes written to the
socket count against it and an ``K_ACK`` from the client releases them.
When a slow consumer exhausts the budget the gateway **pauses** its
streams through :meth:`EAGrServer.disconnect` — the journal keeps
recording, bounded by ``journal_capacity``, while the live queue is
severed — and **resumes** with ``subscribe(resume_from=last_sent)`` once
acks drain the budget below the low-water mark.  The journal replays the
paused window with the original stamps, so a paused stream is
indistinguishable from a slow network: gap-free, duplicate-free, and the
gateway's memory stays O(connections × max_inflight_bytes) no matter how
far behind a consumer falls.  A pause that outlives the journal's
retention window surfaces as a ``ResumeGapError`` error frame — never a
silent gap.

Disconnects route through the same path: a dropped socket severs the
live queues but leaves the journals recording, so a client that
reconnects and subscribes with its resume token (the last stamp it saw)
continues exactly where the connection died.
"""

from __future__ import annotations

import asyncio
import threading
import time as _time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.core.statestore import WriteFrame
from repro.serve.frames import (
    K_ACK,
    K_ERROR,
    K_HELLO,
    K_NOTES,
    K_OK,
    K_PICKLE,
    K_READ,
    K_SUBSCRIBE,
    K_WRITE,
    LENGTH_PREFIX,
    MAX_FRAME_BYTES,
    decode,
    decode_control,
    encode_control,
)
from repro.serve.journal import ResumeGapError
from repro.serve.messages import OP_WRITE
from repro.serve.server import EAGrServer, ServeError


class GatewayError(ServeError):
    """A protocol violation or gateway-side failure."""


class _Stream:
    """One subscriber's server-push stream over one connection."""

    __slots__ = (
        "subscriber",
        "subscription",
        "event",
        "task",
        "lock",
        "paused",
        "dead",
        "last_sent",
        "ledger",
    )

    def __init__(self, subscriber: Hashable) -> None:
        self.subscriber = subscriber
        self.subscription = None
        #: pump wake-up, set from the server's delivery threads via
        #: ``loop.call_soon_threadsafe``.
        self.event = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        #: serializes pause/resume/subscribe transitions on this stream.
        self.lock = asyncio.Lock()
        self.paused = False
        #: set when a resume hit a journal gap: the client must
        #: re-subscribe explicitly (it was told so via K_ERROR).
        self.dead = False
        #: last stamp written to the socket — the resume cursor.
        self.last_sent = 0
        #: (stamp, wire bytes) per sent item, released by client acks.
        self.ledger = deque()


class _Connection:
    """Per-socket state (all mutation happens on the loop thread)."""

    __slots__ = (
        "reader",
        "writer",
        "streams",
        "inflight",
        "send_lock",
        "closed",
        "default_subscriber",
        "peer",
    )

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.streams: Dict[Hashable, _Stream] = {}
        #: notification bytes on the wire but not yet acked.
        self.inflight = 0
        self.send_lock = asyncio.Lock()
        self.closed = False
        self.default_subscriber: Optional[Hashable] = None
        try:
            self.peer = writer.get_extra_info("peername")
        except Exception:  # pragma: no cover - transport quirk
            self.peer = None


class GatewayServer:
    """TCP front door for one :class:`~repro.serve.server.EAGrServer`.

    Parameters
    ----------
    server:
        The front-end to expose.  The gateway serializes every
        ``write_batch`` through one worker thread (the server's write
        path is single-producer by design); reads, subscribes and acks
        run on a small shared pool.
    host / port:
        Listen address.  ``port=0`` picks a free port; :meth:`start`
        returns the bound ``(host, port)``.
    max_inflight_bytes:
        Per-connection flow-control budget: notification bytes sent but
        not yet acked.  A connection at the budget has its streams
        paused (journal-backed) until acks drain it below
        ``low_water_bytes``.
    low_water_bytes:
        Resume threshold (default ``max_inflight_bytes // 2``).
    max_frame_bytes:
        Reject any wire frame larger than this (protocol error).
    """

    def __init__(
        self,
        server: EAGrServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_inflight_bytes: int = 1 << 20,
        low_water_bytes: Optional[int] = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        from repro.obs import declare_gateway_metrics

        if max_inflight_bytes < 1:
            raise ValueError("max_inflight_bytes must be >= 1")
        self._server = server
        self._host = host
        self._port = port
        self._max_inflight = max_inflight_bytes
        self._low_water = (
            max_inflight_bytes // 2 if low_water_bytes is None else low_water_bytes
        )
        self._max_frame = max_frame_bytes
        self._gm = declare_gateway_metrics(server._registry)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._asyncio_server = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self._connections: Set[_Connection] = set()
        self.address: Optional[Tuple[str, int]] = None
        self._closed = False
        # One writer thread: write_batch acceptance order across every
        # connection is the order this executor runs them in.
        self._write_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="eagr-gw-write"
        )
        self._call_pool = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="eagr-gw-call"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, start the event-loop thread, return ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(started,), name="eagr-gateway", daemon=True
        )
        self._thread.start()
        started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.address

    def _run(self, started: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop = asyncio.Event()
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self._host, self._port)
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self._startup_error = exc
            started.set()
            loop.close()
            return
        self._asyncio_server = server
        self.address = server.sockets[0].getsockname()[:2]
        started.set()
        try:
            loop.run_until_complete(self._stop.wait())
            loop.run_until_complete(self._shutdown())
        finally:
            loop.close()

    async def _shutdown(self) -> None:
        self._asyncio_server.close()
        await self._asyncio_server.wait_closed()
        for conn in list(self._connections):
            await self._teardown(conn)
        # Reap the per-connection reader tasks (and any stragglers) so
        # the loop closes without "Task was destroyed but it is pending".
        tasks = [
            task
            for task in asyncio.all_tasks(self._loop)
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def close(self) -> None:
        """Stop accepting, drop every connection, join the loop thread.

        Idempotent.  The underlying :class:`EAGrServer` is *not* closed —
        the gateway is a view over it, and journals keep recording so
        clients of a restarted gateway can resume."""
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._thread is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
            self._thread.join(timeout=10.0)
        self._write_pool.shutdown(wait=False)
        self._call_pool.shutdown(wait=False)

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connections(self) -> int:
        """Live connection count (approximate under churn)."""
        return len(self._connections)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self._gm["gw_connections_opened"].inc()
        self._gm["gw_connections_active"].add(1)
        try:
            while True:
                header = await reader.readexactly(LENGTH_PREFIX.size)
                (length,) = LENGTH_PREFIX.unpack(header)
                if length > self._max_frame:
                    self._gm["gw_protocol_errors"].inc()
                    await self._send_error(
                        conn, None, "GatewayError",
                        f"frame of {length} bytes exceeds the "
                        f"{self._max_frame}-byte bound",
                    )
                    break
                payload = await reader.readexactly(length)
                self._gm["gw_frames_in"].inc()
                self._gm["gw_bytes_in"].inc(LENGTH_PREFIX.size + length)
                await self._dispatch(conn, payload)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            try:
                await self._teardown(conn)
            except asyncio.CancelledError:
                # Shutdown's cancel sweep caught us mid-teardown; the
                # server-side disconnects it skipped are moot — the
                # journals outlive the gateway either way.
                pass

    async def _teardown(self, conn: _Connection) -> None:
        """Route a vanished client through the server's disconnect path:
        live queues are severed, journals keep recording, and a later
        subscribe with the client's resume token replays the gap."""
        if conn.closed:
            return
        conn.closed = True
        self._connections.discard(conn)
        self._gm["gw_connections_active"].add(-1)
        for stream in conn.streams.values():
            if stream.task is not None:
                stream.task.cancel()
            subscription = stream.subscription
            stream.subscription = None
            if subscription is not None:
                subscription.on_delivery = None
            self._gm["gw_streams_active"].add(-1)
            try:
                await self._loop.run_in_executor(
                    self._call_pool, self._server.disconnect, stream.subscriber
                )
            except Exception:  # noqa: BLE001 - server may be closing too
                pass
        conn.streams.clear()
        try:
            conn.writer.close()
        except Exception:  # noqa: BLE001 - already dead
            pass

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, conn: _Connection, payload: bytes) -> None:
        kind = payload[0]
        if kind in (K_WRITE, K_PICKLE):
            await self._do_write(conn, payload)
        elif kind == K_HELLO:
            await self._do_hello(conn, decode_control(payload))
        elif kind == K_SUBSCRIBE:
            await self._do_subscribe(conn, decode_control(payload))
        elif kind == K_READ:
            await self._do_read(conn, decode_control(payload))
        elif kind == K_ACK:
            await self._do_ack(conn, decode_control(payload))
        else:
            self._gm["gw_protocol_errors"].inc()
            await self._send_error(
                conn, None, "GatewayError", f"unknown frame kind {kind}"
            )

    async def _do_write(self, conn: _Connection, payload: bytes) -> None:
        request = decode(payload)
        if request.__class__ is not tuple or not request or request[0] != OP_WRITE:
            self._gm["gw_protocol_errors"].inc()
            await self._send_error(
                conn, None, "GatewayError", "malformed write frame"
            )
            return
        _op, rid, _batch_no, items = request
        try:
            count = await self._loop.run_in_executor(
                self._write_pool, self._apply_write, items
            )
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            await self._send_error(conn, rid, type(exc).__name__, str(exc))
            return
        await self._send(conn, encode_control(K_OK, (rid, count)))

    def _apply_write(self, items: Any) -> int:
        # A decoded K_WRITE carries a WriteFrame view over the received
        # payload; write_batch accepts it directly (and unpacks to
        # triples itself when the binary plane is off).
        if items.__class__ is not WriteFrame and items.__class__ is not list:
            items = list(items)
        return self._server.write_batch(items)

    async def _do_hello(self, conn: _Connection, body: Tuple) -> None:
        rid, client_id = body
        conn.default_subscriber = client_id
        await self._send(
            conn,
            encode_control(
                K_OK,
                (
                    rid,
                    {
                        "server": "eagr-gateway",
                        "binary_frames": self._server.binary_frames,
                        "num_shards": self._server.num_shards,
                    },
                ),
            ),
        )

    async def _do_read(self, conn: _Connection, body: Tuple) -> None:
        rid, nodes = body
        try:
            values = await self._loop.run_in_executor(
                self._call_pool, self._server.read_batch, list(nodes)
            )
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            await self._send_error(conn, rid, type(exc).__name__, str(exc))
            return
        await self._send(conn, encode_control(K_OK, (rid, values)))

    async def _do_subscribe(self, conn: _Connection, body: Tuple) -> None:
        rid, subscriber, nodes, resume_from = body
        if subscriber is None:
            subscriber = conn.default_subscriber
        if subscriber is None:
            await self._send_error(
                conn, rid, "GatewayError",
                "no subscriber id: pass one explicitly or HELLO first",
            )
            return
        stream = conn.streams.get(subscriber)
        if stream is None:
            stream = _Stream(subscriber)
            conn.streams[subscriber] = stream
            self._gm["gw_streams_active"].add(1)
            stream.task = self._loop.create_task(self._pump(conn, stream))
        async with stream.lock:
            try:
                subscription = await self._loop.run_in_executor(
                    self._call_pool,
                    lambda: self._server.subscribe(
                        subscriber, nodes, resume_from
                    ),
                )
            except ResumeGapError as exc:
                self._gm["gw_resume_gaps"].inc()
                await self._send_error(
                    conn, rid, "ResumeGapError", str(exc), subscriber
                )
                return
            except Exception as exc:  # noqa: BLE001 - surfaced to the client
                await self._send_error(
                    conn, rid, type(exc).__name__, str(exc), subscriber
                )
                return
            last = self._server.last_stamp(subscriber)
            if resume_from is not None:
                stream.last_sent = resume_from
            else:
                # Fresh subscribe (or watch extension): anything already
                # queued on the new subscription is about to be pumped;
                # the cursor trails the pump from here.
                stream.last_sent = min(stream.last_sent, last)
            stream.paused = False
            stream.dead = False
            self._attach(stream, subscription)
        await self._send(
            conn,
            encode_control(
                K_OK,
                (
                    rid,
                    {
                        "snapshot": subscription.snapshot,
                        "last_stamp": last,
                        "resume_horizon": self._server.resume_horizon(
                            subscriber
                        ),
                    },
                ),
            ),
        )

    async def _do_ack(self, conn: _Connection, body: Tuple) -> None:
        rid, subscriber, stamp = body
        if subscriber is None:
            subscriber = conn.default_subscriber
        stream = conn.streams.get(subscriber)
        if stream is not None:
            released = 0
            ledger = stream.ledger
            while ledger and ledger[0][0] <= stamp:
                released += ledger.popleft()[1]
            conn.inflight -= released
        try:
            dropped = await self._loop.run_in_executor(
                self._call_pool, self._server.ack, subscriber, stamp
            )
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            if rid is not None:
                await self._send_error(conn, rid, type(exc).__name__, str(exc))
            return
        if rid is not None:
            await self._send(conn, encode_control(K_OK, (rid, dropped)))
        await self._maybe_resume(conn)

    # ------------------------------------------------------------------
    # the notification pump (one task per stream, event-driven)
    # ------------------------------------------------------------------

    def _attach(self, stream: _Stream, subscription) -> None:
        """Point the server's delivery hook at this stream's pump."""
        stream.subscription = subscription
        loop = self._loop
        event = stream.event

        def hook() -> None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:  # loop closed: gateway shutting down
                pass

        subscription.on_delivery = hook
        # Cover deliveries that landed between subscribe() returning and
        # the hook attach: one unconditional wake-up.
        event.set()

    async def _pump(self, conn: _Connection, stream: _Stream) -> None:
        try:
            while not conn.closed:
                await stream.event.wait()
                stream.event.clear()
                subscription = stream.subscription
                if subscription is None:
                    continue  # paused or mid-transition
                for item in subscription.poll_batch():
                    payload = encode_control(
                        K_NOTES, (stream.subscriber, item)
                    )
                    nbytes = LENGTH_PREFIX.size + len(payload)
                    stamp = item.stamp
                    stream.ledger.append((stamp, nbytes))
                    conn.inflight += nbytes
                    stream.last_sent = stamp
                    await self._send(conn, payload)
                    self._gm["gw_notes_sent"].inc(
                        len(item) if hasattr(item, "__len__") else 1
                    )
                    if conn.inflight >= self._max_inflight:
                        # Budget exhausted: drop the drained remainder
                        # (journaled — the resume replay restores it)
                        # and pause every stream on this connection.
                        await self._pause_all(conn)
                        break
        except asyncio.CancelledError:
            pass
        except (ConnectionError, RuntimeError):
            # Socket died under the pump: the read loop (or close())
            # notices too; tear down once, here, if it hasn't.
            self._loop.create_task(self._teardown(conn))

    async def _pause_all(self, conn: _Connection) -> None:
        for stream in list(conn.streams.values()):
            await self._pause_stream(conn, stream)

    async def _pause_stream(self, conn: _Connection, stream: _Stream) -> None:
        async with stream.lock:
            if stream.paused or stream.dead or stream.subscription is None:
                return
            stream.paused = True
            subscription = stream.subscription
            stream.subscription = None
            subscription.on_delivery = None
            self._gm["gw_stream_pauses"].inc()
            try:
                await self._loop.run_in_executor(
                    self._call_pool, self._server.disconnect, stream.subscriber
                )
            except Exception:  # noqa: BLE001 - server closing
                pass

    async def _maybe_resume(self, conn: _Connection) -> None:
        if conn.inflight > self._low_water or conn.closed:
            return
        for stream in list(conn.streams.values()):
            if stream.paused:
                await self._resume_stream(conn, stream)

    async def _resume_stream(self, conn: _Connection, stream: _Stream) -> None:
        async with stream.lock:
            if not stream.paused or stream.dead or conn.closed:
                return
            resume_from = stream.last_sent
            try:
                subscription = await self._loop.run_in_executor(
                    self._call_pool,
                    lambda: self._server.subscribe(
                        stream.subscriber, None, resume_from
                    ),
                )
            except ResumeGapError as exc:
                # The pause outlived the journal's retention window: the
                # stream cannot continue gap-free.  Tell the client (it
                # must re-subscribe and re-baseline) — never deliver a
                # stream with a silent hole.
                self._gm["gw_resume_gaps"].inc()
                stream.paused = False
                stream.dead = True
                await self._send_error(
                    conn, None, "ResumeGapError", str(exc), stream.subscriber
                )
                return
            except Exception:  # noqa: BLE001 - server closing
                return
            stream.paused = False
            self._gm["gw_stream_resumes"].inc()
            self._attach(stream, subscription)

    # ------------------------------------------------------------------
    # socket writes
    # ------------------------------------------------------------------

    async def _send(self, conn: _Connection, payload: bytes) -> None:
        data = LENGTH_PREFIX.pack(len(payload)) + payload
        t0 = _time.monotonic()
        async with conn.send_lock:
            conn.writer.write(data)
            await conn.writer.drain()
        self._gm["gw_send_seconds"].observe(_time.monotonic() - t0)
        self._gm["gw_frames_out"].inc()
        self._gm["gw_bytes_out"].inc(len(data))

    async def _send_error(
        self,
        conn: _Connection,
        rid: Optional[int],
        kind: str,
        message: str,
        subscriber: Optional[Hashable] = None,
    ) -> None:
        try:
            await self._send(
                conn, encode_control(K_ERROR, (rid, kind, message, subscriber))
            )
        except (ConnectionError, RuntimeError):
            pass
