"""Reshard plans and the load-driven rebalance policy.

:meth:`~repro.serve.server.EAGrServer.reshard` executes a
:class:`ReshardPlan` — a pure description of which readers move where.
This module is where plans come from:

* :func:`plan_from_assignment` diffs the server's current partition
  against a full target assignment (e.g. a fresh
  :func:`~repro.core.partition.mincut_partition` computed from updated
  write frequencies) — the "re-run the partitioner offline, apply the
  delta live" workflow.
* :func:`propose_rebalance` is the *online* policy: it consumes the
  per-shard load the metrics plane already exports
  (``server_stats()["shard_load"]``), and when one shard's busy
  fraction has drifted far above the mean — the signature of a Zipf
  hot-set migrating across the graph — it proposes moving a small,
  writer-closed group of readers from the hottest shard to the
  coldest.  Moving *writer closures* (a reader together with every
  hot-shard reader that shares a writer with it) is what keeps the
  migration from widening the multicast fan-out: a writer whose whole
  local readership moves stops being replicated to the source shard.

The policy proposes; it never executes.  ``EAGrServer.rebalance()``
wires the two together (propose, then :meth:`reshard` if non-empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence

NodeId = Hashable


@dataclass
class ReshardPlan:
    """A set of reader moves: ``{reader: destination shard}``.

    ``kind`` tags how the plan was produced (``"migrate"``, ``"split"``,
    ``"merge"`` or ``"assignment"``); ``reason`` is a human-readable
    sentence for logs and bench output.  Both are advisory — only
    ``moves`` affects execution.
    """

    moves: Dict[NodeId, int] = field(default_factory=dict)
    kind: str = "migrate"
    reason: str = ""

    def __len__(self) -> int:
        return len(self.moves)

    def __bool__(self) -> bool:
        return bool(self.moves)


@dataclass
class RebalancePolicy:
    """Thresholds for :func:`propose_rebalance`.

    skew_threshold:
        Propose only when the hottest shard's busy fraction exceeds
        this multiple of the mean busy fraction.
    min_busy:
        Absolute floor: below this busy fraction the server is idle
        enough that skew is noise, not load.
    max_move_fraction:
        Never move more than this fraction of the hot shard's readers
        in one plan (small steps; the policy runs repeatedly).
    balance:
        Never grow the destination beyond ``balance`` times the mean
        shard size — the same bound the min-cut partitioner honours.
    """

    skew_threshold: float = 1.5
    min_busy: float = 0.05
    max_move_fraction: float = 0.25
    balance: float = 1.25


def plan_from_assignment(server, assignment) -> ReshardPlan:
    """Diff a full target assignment against the server's partition.

    ``assignment`` maps readers to shard ids: anything with
    ``.get(node, default)`` semantics (a dict, or the
    :class:`~repro.core.partition.TableAssignment` returned by
    :func:`~repro.core.partition.mincut_assignment`) — readers absent
    from the target stay where they are — or, failing that, a plain
    reader->shard callable such as
    :func:`~repro.core.partitioned.community_assignment`, which is
    asked about every current reader.
    """
    getter = getattr(assignment, "get", None)
    moves: Dict[NodeId, int] = {}
    for node, current in server.reader_shard.items():
        if getter is not None:
            target = getter(node, current)
        else:
            target = assignment(node)
        if target != current and 0 <= target < server.num_shards:
            moves[node] = target
    return ReshardPlan(
        moves=moves,
        kind="assignment",
        reason=f"target assignment differs on {len(moves)} readers",
    )


def _reader_weight(server, reader, write_freq) -> float:
    """A reader's load proxy: summed write frequency of its writers."""
    total = 0.0
    for writer in server.query.neighborhood(server.graph, reader):
        total += write_freq.get(writer, 1.0)
    return total


def propose_rebalance(
    server,
    policy: Optional[RebalancePolicy] = None,
    write_freq: Optional[Dict[NodeId, float]] = None,
    load: Optional[Sequence[Dict[str, Any]]] = None,
) -> Optional[ReshardPlan]:
    """Propose a hot→cold reader migration, or ``None`` when balanced.

    ``load`` defaults to ``server.server_stats()["shard_load"]`` — the
    windowed busy-fraction / apply-rate gauges the shard workers publish
    through the metrics slab.  ``write_freq`` (observed or expected
    per-writer write counts) orders the hot shard's readers so the plan
    moves the load, not just the readers; without it every writer
    weighs 1 and the plan falls back to moving the widest closures.
    """
    if policy is None:
        policy = RebalancePolicy()
    if load is None:
        load = server.server_stats()["shard_load"]
    if len(load) < 2:
        return None
    busy = {row["shard"]: float(row["busy_fraction"]) for row in load}
    if max(busy.values()) <= 0.0:
        # Busy gauges need a scrape window; fall back to apply rates.
        busy = {row["shard"]: float(row["applied_eps"]) for row in load}
    sizes = {row["shard"]: int(row["readers"]) for row in load}
    hot = max(busy, key=lambda s: (busy[s], sizes[s]))
    cold = min(busy, key=lambda s: (busy[s], -sizes[s]))
    if hot == cold or sizes[hot] <= 1:
        return None
    mean_busy = sum(busy.values()) / len(busy)
    if busy[hot] < policy.min_busy:
        return None
    if busy[hot] <= policy.skew_threshold * max(mean_busy, 1e-12):
        return None

    freq = write_freq or {}
    hot_readers = sorted(
        (node for node, sid in server.reader_shard.items() if sid == hot),
        key=lambda n: (-_reader_weight(server, n, freq), repr(type(n)), repr(n)),
    )
    total_readers = len(server.reader_shard)
    cap = max(1, int(policy.balance * total_readers / server.num_shards))
    budget = min(
        max(1, int(policy.max_move_fraction * len(hot_readers))),
        cap - sizes[cold],
    )
    if budget <= 0:
        return None

    # Reverse map over the hot shard only (neighborhood is directional).
    writer_readers: Dict[NodeId, List[NodeId]] = {}
    for reader in hot_readers:
        for writer in server.query.neighborhood(server.graph, reader):
            writer_readers.setdefault(writer, []).append(reader)
    moves: Dict[NodeId, int] = {}
    for seed in hot_readers:
        if seed in moves:
            continue
        # Writer closure of the seed within the hot shard: BFS over
        # shared writers so no writer ends up multicast to both sides.
        closure: List[NodeId] = [seed]
        members = {seed}
        frontier = [seed]
        while frontier:
            reader = frontier.pop()
            for writer in server.query.neighborhood(server.graph, reader):
                for other in writer_readers.get(writer, ()):
                    if other not in members:
                        members.add(other)
                        closure.append(other)
                        frontier.append(other)
        if len(moves) + len(closure) > budget:
            if moves:
                break  # plan full: keep each rebalance a small step
            # Even the first closure overflows the budget (which also
            # encodes the destination's balance headroom): moving it
            # anyway could overfill the cold shard past policy.balance.
            # Skip it — a lighter seed may own a closure that fits.
            continue
        if len(closure) >= len(hot_readers):
            continue  # one giant component: splitting it widens the cut
        for node in closure:
            moves[node] = cold
        if len(moves) >= budget:
            break
    if not moves:
        return None
    return ReshardPlan(
        moves=moves,
        kind="split" if sizes[cold] == 0 else "migrate",
        reason=(
            f"shard {hot} busy {busy[hot]:.3f} vs mean {mean_busy:.3f} "
            f"(> {policy.skew_threshold}x); moving {len(moves)} readers "
            f"to shard {cold}"
        ),
    )
