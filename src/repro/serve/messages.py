"""Wire protocol between the serving front-end and its shards.

Messages are plain tuples (cheap to pickle across the process boundary, a
few machine words in-process):

Requests — ``(op, seq, *payload)``:

* ``(OP_WRITE, seq, items)`` — apply a write batch; ``items`` is a list of
  ``(node, value, timestamp)`` triples in stream order.
* ``(OP_READ, seq, nodes)`` — evaluate the query at each node.
* ``(OP_SUBSCRIBE, seq, subscriber, nodes)`` — start watching egos;
  the reply carries the baseline snapshot ``{node: value}``.
* ``(OP_UNSUBSCRIBE, seq, subscriber, nodes_or_None)`` — stop watching
  the listed egos (``None``: all of the subscriber's egos on this shard).
* ``(OP_DRAIN, seq)`` — barrier: the reply proves every earlier request on
  this queue has been fully applied (the queue is FIFO and the shard loop
  is single-threaded).
* ``(OP_STATS, seq)`` — operational counters snapshot.
* ``(OP_STOP, seq)`` — flush, acknowledge, exit the loop.

Replies:

* ``(R_WRITE, seq, count, notices)`` — write batch applied; ``notices``
  is a list of ``(subscriber, ego, value, shard_batch)`` for every watched
  ego whose value actually changed.
* ``(R_OK, seq, payload)`` — success for every other op.
* ``(R_ERR, seq, message)`` — the request raised; ``message`` is the
  stringified error (exceptions themselves may not pickle).
* ``(R_STOPPED, seq, None)`` — final reply after ``OP_STOP``; reply
  drainers exit on it.

``seq`` values are allocated by the front-end and unique per server, so
replies can be matched to waiting callers from any shard's drainer thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

NodeId = Hashable

# -- request opcodes --------------------------------------------------------
OP_WRITE = 0
OP_READ = 1
OP_SUBSCRIBE = 2
OP_UNSUBSCRIBE = 3
OP_DRAIN = 4
OP_STATS = 5
OP_STOP = 6

# -- reply kinds ------------------------------------------------------------
R_OK = 0
R_WRITE = 1
R_ERR = 2
R_STOPPED = 3


@dataclass(frozen=True, slots=True)
class Notification:
    """One pushed update of a standing query: ``F(N(ego))`` changed.

    Attributes
    ----------
    subscriber:
        The subscriber this delivery belongs to.
    ego:
        The query node whose aggregate changed.
    value:
        The new (finalized) aggregate value.
    stamp:
        Per-subscriber delivery stamp, strictly monotonically increasing —
        a consumer that sees stamp ``n`` has seen every earlier delivery
        (at-least-once: after a shard restart the same change may be
        delivered again under a fresh stamp).
    shard:
        The shard that produced the change.
    batch:
        The shard-local write-batch sequence number that caused it
        (monotone per shard; useful for correlating with ingestion).
    """

    subscriber: Hashable
    ego: NodeId
    value: Any
    stamp: int
    shard: int
    batch: int
