"""Wire protocol between the serving front-end and its shards.

Messages are plain tuples (cheap to pickle across the process boundary, a
few machine words in-process):

Requests — ``(op, seq, *payload)``:

* ``(OP_WRITE, seq, batch_no, items)`` — apply a write batch; ``items`` is a
  list of ``(node, value, timestamp)`` triples in stream order and
  ``batch_no`` is the front-end's per-shard monotone batch number.  A shard
  **skips** any batch whose number it has already applied (``batch_no <=
  applied_through``), which makes the front-end's redo-log replay after a
  worker restart idempotent at batch granularity.
* ``(OP_READ, seq, nodes)`` — evaluate the query at each node.
* ``(OP_SUBSCRIBE, seq, subscriber, nodes)`` — start watching egos;
  the reply carries the baseline snapshot ``{node: value}``.
* ``(OP_UNSUBSCRIBE, seq, subscriber, nodes_or_None)`` — stop watching
  the listed egos (``None``: all of the subscriber's egos on this shard).
* ``(OP_DRAIN, seq)`` — barrier: the reply proves every earlier request on
  this queue has been fully applied (the queue is FIFO and the shard loop
  is single-threaded).
* ``(OP_STATS, seq)`` — operational counters snapshot.
* ``(OP_CHECKPOINT, seq)`` — reply with a :class:`ShardCheckpoint`: the
  picklable restart state of the shard (window buffers, subscriber
  watch/baseline registry, applied batch number, global write stamp).  The
  front-end keeps the latest checkpoint per shard and truncates that
  shard's redo log to batches after it.
* ``(OP_STOP, seq)`` — flush, acknowledge, exit the loop.
* ``(OP_HANDLES, seq)`` — reply with the shard's zero-copy read map:
  ``{reader node: (overlay handle, is_push)}`` plus the shard's shared
  value-segment name (or ``None`` off the shm path).  The front-end uses
  it to answer push-reader reads straight from the shard's shared
  columns; pull readers and unknown nodes stay on the ``OP_READ`` path.

Transports: requests normally ride the executor's bounded ``mp.Queue``.
On the shared-memory transport (:mod:`repro.serve.shm`) the *same
request tuples* travel through the shard's ingress ring instead — FIFO
order, and therefore every ordering guarantee documented here, is
preserved — and write batches stop producing ``R_WRITE`` replies unless
they carry notices: the applied watermark is published through the
ring's header, so an empty acknowledgement would be pure codec traffic.

Wire frames and codec negotiation (:mod:`repro.serve.frames`): every
ring payload starts with a one-byte frame kind.

* ``K_PICKLE`` (0) — ``pickle.dumps`` of the request tuple, the
  universal fallback.  Control ops (read/subscribe/drain/...) always
  use it; so do write batches whose items fail the packing gate.
* ``K_WRITE`` (1) — a pickle-free write batch: a 32-byte fixed header
  (kind, seq, batch_no, count) followed by the raw bytes of a
  ``(node, value, timestamp)`` numpy record array
  (:class:`repro.core.statestore.WriteFrame`).  The shard decodes it
  with one ``np.frombuffer`` — zero per-item deserialization before
  the columnar scatter.

Negotiation is server-wide, resolved once at construction from the
``binary_frames`` parameter (``True`` / ``False`` / ``"auto"``, where
auto honours the ``EAGR_BINARY_FRAMES`` env toggle and otherwise
enables binary exactly when numpy is importable).  Fallback is always
per-batch and lossless: a batch that cannot pack — non-int node ids,
non-float values, control traffic — rides ``K_PICKLE`` on the same
ring with identical ordering and replay semantics, so mixed workloads
need no client-side switches.  On the binary plane, changed-ego
notices travel front-ward as columnar ``ChangeFrame``/``NoteFrame``
record batches instead of per-object tuples; ``R_WRITE``'s documented
shape below describes the pickle plane, with frames carrying the same
fields column-wise.

Replies:

* ``(R_WRITE, seq, count, notices)`` — write batch applied; ``notices``
  is a list of ``(subscriber, ego, value, shard_batch)`` for every watched
  ego whose value actually changed.
* ``(R_OK, seq, payload)`` — success for every other op.
* ``(R_ERR, seq, message)`` — the request raised; ``message`` is the
  stringified error (exceptions themselves may not pickle).
* ``(R_STOPPED, seq, None)`` — final reply after ``OP_STOP``; reply
  drainers exit on it.

``seq`` values are allocated by the front-end and unique per server, so
replies can be matched to waiting callers from any shard's drainer thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

NodeId = Hashable

# -- request opcodes --------------------------------------------------------
OP_WRITE = 0
OP_READ = 1
OP_SUBSCRIBE = 2
OP_UNSUBSCRIBE = 3
OP_DRAIN = 4
OP_STATS = 5
OP_STOP = 6
OP_CHECKPOINT = 7
OP_HANDLES = 8

# -- reply kinds ------------------------------------------------------------
R_OK = 0
R_WRITE = 1
R_ERR = 2
R_STOPPED = 3


@dataclass(frozen=True, slots=True)
class Notification:
    """One pushed update of a standing query: ``F(N(ego))`` changed.

    Attributes
    ----------
    subscriber:
        The subscriber this delivery belongs to.
    ego:
        The query node whose aggregate changed.
    value:
        The new (finalized) aggregate value.
    stamp:
        Per-subscriber delivery stamp, strictly monotonically increasing
        and **contiguous** (1, 2, 3, ...) — a consumer that sees stamp
        ``n`` has seen every earlier delivery.  Stamps are assigned once,
        when the notification is journaled: a replay after
        ``resume_from=n`` re-delivers the *original* stamps ``n+1 ...``
        (exactly-once-after-resume), and stamps keep counting up across
        reconnects and shard restarts.
    shard:
        The shard that produced the change.
    batch:
        The shard runtime's global write stamp when the change was
        produced (monotone per shard, stable across overlay rebuilds and
        checkpoint/restart — see
        :meth:`repro.core.execution.Runtime.changed_report`); useful for
        correlating notifications with ingestion.
    """

    subscriber: Hashable
    ego: NodeId
    value: Any
    stamp: int
    shard: int
    batch: int


@dataclass(frozen=True, slots=True)
class ShardCheckpoint:
    """Everything a replacement worker needs to resume a shard's duty.

    Produced by ``OP_CHECKPOINT`` (pickle-snapshotted, so later shard
    mutations never alias into it).  Restoring is exact: the engine's
    value state is fully derivable from the writer window ``buffers``
    (:meth:`repro.core.execution.Runtime.rebuild` re-materializes PAOs
    from them), so a host rebuilt from ``ShardSpec`` + checkpoint answers
    reads identically to the checkpointed instance, and the front-end's
    redo log replays everything after ``applied_through`` idempotently.

    Attributes
    ----------
    shard_id:
        The shard this checkpoint belongs to (sanity-checked on restore).
    applied_through:
        Highest front-end batch number applied; replayed batches at or
        below it are skipped.
    stamp:
        The runtime's global write stamp, re-seeded on restore so
        notification ``batch`` tags stay monotone across the restart.
    clock:
        The runtime's logical clock (time-window coherence).
    buffers:
        ``writer node -> WindowBuffer`` — the full ingestion state.
    watchers:
        ``ego -> tuple(subscribers)`` — the shard's watch registry.
    baseline:
        ``ego -> last notified value`` — the diffing baselines, so a
        restarted shard re-notifies exactly the changes the checkpoint
        has not yet seen (the front-end's per-subscriber value filter
        drops any that were already delivered).
    """

    shard_id: int
    applied_through: int
    stamp: int
    clock: float
    buffers: Any
    watchers: Any
    baseline: Any
