"""Shared-memory transport primitives for the serving tier.

:class:`ShmRing` is the per-shard **ingress ring**: a single-producer /
single-consumer byte ring in a named ``multiprocessing.shared_memory``
segment.  The front-end (one logical producer; concurrent server threads
serialize on the executor's push lock) appends length-prefixed pickled
request frames; the shard worker polls and consumes them in FIFO order —
the same total order the bounded ``mp.Queue`` gave, minus the queue's
feeder thread, pipe syscalls and per-message wakeups.

Framing is seqlock-style: a frame's payload bytes are written first and
the ring's ``tail`` cursor — the publication point — is stored *after*
them, so the consumer never observes a partially written frame (``head``
and ``tail`` are monotone byte offsets in aligned int64 header slots;
8-byte aligned stores are single machine stores on the supported
platforms).  The consumer advances ``head`` only after fully copying a
frame out.

The header also carries the shard's **applied watermark**: after applying
a write batch the worker publishes ``(applied batch_no, runtime write
stamp)`` here, which is what lets the front-end (a) answer reads from the
shard's shared value columns only once every batch it routed has landed
(read-your-writes without a queue round-trip) and (b) run ``drain``-style
barriers against a dead-cheap shared counter instead of a request/reply
exchange.

Lifecycle mirrors the value store: the front-end creates rings (and
unlinks them at close — crash-safe cleanup lives with the front-end), the
worker attaches by name; :meth:`ShmRing.reset` rewinds the cursors when a
shard is restarted so the replacement worker starts from an empty ring.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.core.statestore import attach_segment, create_segment, unlink_segment

#: Header int64 slots: capacity, head, tail, applied batch_no, write
#: stamp, consumer-waiting flag.
_SLOT_CAPACITY = 0
_SLOT_HEAD = 1
_SLOT_TAIL = 2
_SLOT_APPLIED = 3
_SLOT_STAMP = 4
_SLOT_WAITING = 5
_SLOT_PUSHED = 6
_SLOT_POPPED = 7
_HEADER_SLOTS = 8
_HEADER_BYTES = _HEADER_SLOTS * 8

_Q = struct.Struct("<q")
_LEN = struct.Struct("<q")


class RingClosed(Exception):
    """Raised when operating on a closed (unmapped) ring."""


class ShmRing:
    """SPSC length-prefixed byte ring over a named shm segment.

    Parameters
    ----------
    name:
        Segment name.  With ``create=True`` the segment is created (the
        front-end side); with ``create=False`` it is attached (the worker
        side).
    capacity:
        Data-area bytes (excluding the header).  The ring refuses frames
        larger than the capacity outright — the caller's coalescing /
        blocking logic handles sustained overload, exactly as it does for
        a full ``mp.Queue``.
    """

    def __init__(self, name: str, capacity: int = 1 << 20, create: bool = True) -> None:
        if create:
            self._segment = create_segment(name, _HEADER_BYTES + capacity)
            self._buf = self._segment.buf
            _Q.pack_into(self._buf, _SLOT_CAPACITY * 8, capacity)
            _Q.pack_into(self._buf, _SLOT_HEAD * 8, 0)
            _Q.pack_into(self._buf, _SLOT_TAIL * 8, 0)
            _Q.pack_into(self._buf, _SLOT_APPLIED * 8, -1)
            _Q.pack_into(self._buf, _SLOT_STAMP * 8, 0)
            _Q.pack_into(self._buf, _SLOT_WAITING * 8, 0)
            _Q.pack_into(self._buf, _SLOT_PUSHED * 8, 0)
            _Q.pack_into(self._buf, _SLOT_POPPED * 8, 0)
        else:
            self._segment = attach_segment(name)
            self._buf = self._segment.buf
            capacity = _Q.unpack_from(self._buf, _SLOT_CAPACITY * 8)[0]
        self.name = self._segment.name
        self.capacity = int(capacity)
        self.owner = create

    # -- header accessors ---------------------------------------------------

    def _load(self, slot: int) -> int:
        buf = self._buf
        if buf is None:
            raise RingClosed(f"ring {self.name} is closed")
        return _Q.unpack_from(buf, slot * 8)[0]

    def _store(self, slot: int, value: int) -> None:
        buf = self._buf
        if buf is None:
            raise RingClosed(f"ring {self.name} is closed")
        _Q.pack_into(buf, slot * 8, value)

    def publish_applied(self, batch_no: int, stamp: int) -> None:
        """Worker side: announce the highest processed batch, plus the
        runtime's write stamp (diagnostic — correlates the watermark with
        notification ``batch`` tags; the read barrier consumes only the
        batch number, the pair is not read atomically)."""
        self._store(_SLOT_STAMP, stamp)
        self._store(_SLOT_APPLIED, batch_no)

    def applied(self) -> int:
        """Front-end side: the shard's applied-batch watermark (-1 while
        the worker is still booting)."""
        return self._load(_SLOT_APPLIED)

    def stamp(self) -> int:
        """The shard runtime's published global write stamp."""
        return self._load(_SLOT_STAMP)

    @property
    def pending_bytes(self) -> int:
        """Bytes currently enqueued (published but not yet consumed)."""
        return self._load(_SLOT_TAIL) - self._load(_SLOT_HEAD)

    @property
    def pending_frames(self) -> int:
        """Frames currently enqueued.

        The executor bounds this at its queue depth: an effectively
        bottomless byte ring would remove the backpressure that makes the
        front-end *coalesce* consecutive batches for a lagging shard, and
        per-batch fixed costs (unpickle, plan dispatch, scatter setup)
        would then dominate the worker — bounded in-flight frames keep
        the queue transport's batching behavior, byte capacity merely
        guards against jumbo frames.
        """
        return self._load(_SLOT_PUSHED) - self._load(_SLOT_POPPED)

    def depth_stats(self) -> dict:
        """One-shot occupancy snapshot for the metrics plane.

        Reads only header slots — no lock, no effect on either party.
        The fields may be mutually torn by a concurrent push/pop; each is
        individually consistent, which is all a gauge needs.
        """
        pushed = self._load(_SLOT_PUSHED)
        popped = self._load(_SLOT_POPPED)
        return {
            "depth_frames": pushed - popped,
            "depth_bytes": self._load(_SLOT_TAIL) - self._load(_SLOT_HEAD),
            "capacity_bytes": self.capacity,
            "pushed": pushed,
            "popped": popped,
            "consumer_waiting": self._load(_SLOT_WAITING) != 0,
        }

    def set_waiting(self, waiting: bool) -> None:
        """Consumer side: announce (before blocking on the doorbell) or
        retract the about-to-park state.  The consumer must re-check the
        ring *after* setting this — producer-side ``waiting()`` checks
        plus that re-check close the missed-wakeup window (the doorbell
        poll timeout is the final backstop)."""
        self._store(_SLOT_WAITING, 1 if waiting else 0)

    def waiting(self) -> bool:
        """Producer side: is the consumer parked (or parking) on the
        doorbell?"""
        return self._load(_SLOT_WAITING) != 0

    # -- data area ----------------------------------------------------------

    def _write_at(self, position: int, data: bytes) -> None:
        offset = position % self.capacity
        end = offset + len(data)
        base = _HEADER_BYTES
        if end <= self.capacity:
            self._buf[base + offset : base + end] = data
        else:
            split = self.capacity - offset
            self._buf[base + offset : base + self.capacity] = data[:split]
            self._buf[base : base + end - self.capacity] = data[split:]

    def _read_at(self, position: int, length: int) -> bytes:
        offset = position % self.capacity
        end = offset + length
        base = _HEADER_BYTES
        if end <= self.capacity:
            return bytes(self._buf[base + offset : base + end])
        split = self.capacity - offset
        return bytes(self._buf[base + offset : base + self.capacity]) + bytes(
            self._buf[base : base + end - self.capacity]
        )

    # -- producer -----------------------------------------------------------

    def try_push(self, payload: bytes) -> bool:
        """Append one frame; ``False`` when the ring lacks space.

        An over-capacity frame raises ``ValueError`` — it could *never*
        fit, so treating it as backpressure would livelock the caller.
        """
        if self._buf is None:
            raise RingClosed(f"ring {self.name} is closed")
        need = _LEN.size + len(payload)
        if need > self.capacity:
            raise ValueError(
                f"frame of {need} bytes exceeds ring capacity {self.capacity}"
            )
        head = self._load(_SLOT_HEAD)
        tail = self._load(_SLOT_TAIL)
        if self.capacity - (tail - head) < need:
            return False
        self._write_at(tail, _LEN.pack(len(payload)))
        self._write_at(tail + _LEN.size, payload)
        self._store(_SLOT_PUSHED, self._load(_SLOT_PUSHED) + 1)
        self._store(_SLOT_TAIL, tail + need)  # publication point
        return True

    # -- consumer -----------------------------------------------------------

    def try_pop(self) -> Optional[bytes]:
        """Consume one frame, or ``None`` when the ring is empty."""
        head = self._load(_SLOT_HEAD)
        if head == self._load(_SLOT_TAIL):
            return None
        (length,) = _LEN.unpack(self._read_at(head, _LEN.size))
        payload = self._read_at(head + _LEN.size, length)
        self._store(_SLOT_POPPED, self._load(_SLOT_POPPED) + 1)
        self._store(_SLOT_HEAD, head + _LEN.size + length)
        return payload

    # There is deliberately no blocking ``pop``: the one blessed consumer
    # pattern is ``try_pop`` plus the executor's doorbell pipe (see
    # ``shard_worker_shm``) — kernel-blocking, not poll-burning, because
    # shard workers share cores with the producing front-end.

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        """Rewind to empty (front-end, with no worker attached running)."""
        self._store(_SLOT_HEAD, 0)
        self._store(_SLOT_TAIL, 0)
        self._store(_SLOT_APPLIED, -1)
        self._store(_SLOT_STAMP, 0)
        self._store(_SLOT_WAITING, 0)
        self._store(_SLOT_PUSHED, 0)
        self._store(_SLOT_POPPED, 0)

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        self._buf = None
        try:
            segment.close()
        except BufferError:  # pragma: no cover - a view escaped
            pass

    def unlink(self) -> None:
        """Destroy the segment (front-end cleanup; idempotent)."""
        name = self.name
        self.close()
        unlink_segment(name)
