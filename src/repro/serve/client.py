"""Client for the serve tier's TCP gateway.

Two layers over one wire protocol (see :mod:`repro.serve.gateway`):

* :class:`AsyncEAGrClient` — the asyncio client.  One connection, one
  receive task; requests are correlated by request id, notification
  frames fan out to per-subscriber :class:`AsyncSubscriptionStream`\\ s.
* :class:`EAGrClient` — a synchronous facade for ordinary callers: it
  runs an event loop on a daemon thread and exposes the familiar
  blocking surface (``write_batch`` / ``read_batch`` / ``subscribe`` /
  streams with ``get(timeout=...)``), so swapping an in-process
  ``EAGrServer`` for a remote gateway is a one-line change.

Write batches are encoded client-side with the same
:class:`~repro.core.statestore.WriteFrame` packing the ingress shm ring
uses — when the batch qualifies for the columnar fast path the gateway
hands the received frame to ``EAGrServer.write_batch`` without ever
materializing triples.  Non-packable batches fall back to the pickle
payload transparently.

Resume tokens double as reconnect cursors: every stream tracks the last
stamp it has seen (:attr:`~AsyncSubscriptionStream.resume_token`), and a
client that lost its connection reconnects with
``subscribe(..., resume_from=stream.resume_token)`` to continue gap-free
and duplicate-free — the server's journal replays the missed window with
the original stamps.

Acks are flow control: the gateway bounds un-acked bytes per connection
and pauses streams at the bound.  With ``auto_ack=True`` (the default)
the client acknowledges every notification frame on receipt, so a
consumer that keeps reading never pauses; pass ``auto_ack=False`` to ack
manually (``stream.ack()``) and let the gateway's backpressure hold the
un-consumed window in the server's journal instead of in client memory.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.core.statestore import WriteFrame
from repro.serve.frames import (
    K_ACK,
    K_ERROR,
    K_HELLO,
    K_NOTES,
    K_OK,
    K_READ,
    K_SUBSCRIBE,
    LENGTH_PREFIX,
    NoteFrame,
    decode_control,
    encode_control,
    encode_pickle,
    encode_write,
)
from repro.serve.journal import ResumeGapError
from repro.serve.messages import OP_WRITE, Notification
from repro.serve.server import ServeError


class GatewayClosed(ServeError):
    """The gateway connection is gone (EOF, reset, or local close)."""


def _map_error(kind: str, message: str) -> Exception:
    """An error frame back into the exception the server-side call raised."""
    from repro.serve.gateway import GatewayError

    if kind == "ResumeGapError":
        return ResumeGapError(message)
    if kind == "ServeError":
        return ServeError(message)
    if kind == "GatewayError":
        return GatewayError(message)
    return GatewayError(f"{kind}: {message}")


class AsyncSubscriptionStream:
    """Client-side view of one subscriber's notification stream.

    Mirrors the server-side :class:`~repro.serve.server.Subscription`
    surface (``snapshot`` / ``get`` / ``poll`` / ``poll_batch``) with the
    delivery queue fed by the connection's receive task.  A connection
    loss surfaces as :class:`GatewayClosed` from the next read — never a
    silent end-of-stream — and :attr:`resume_token` is exactly what a
    replacement client passes as ``resume_from`` to continue.
    """

    def __init__(self, client: "AsyncEAGrClient", subscriber: Hashable,
                 auto_ack: bool) -> None:
        self._client = client
        self.subscriber = subscriber
        self.auto_ack = auto_ack
        self.snapshot: Dict[Any, Any] = {}
        #: server-side stamp horizon at subscribe time (stamps at or
        #: below this cannot be resumed from after an ack/overflow).
        self.last_stamp = 0
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._buffer: List[Notification] = []
        #: last stamp seen on this stream — the reconnect cursor.
        self.resume_token = 0

    # -- feeding (receive task only) -----------------------------------

    def _push(self, item: Any) -> None:
        if not isinstance(item, BaseException):
            self.resume_token = item.stamp
        self._queue.put_nowait(item)

    # -- consuming -----------------------------------------------------

    def _materialize(self, item: Any) -> Notification:
        if isinstance(item, BaseException):
            self._queue.put_nowait(item)  # sticky: every later read fails too
            raise item
        if item.__class__ is NoteFrame:
            notes = item.notifications()
            self._buffer.extend(notes[1:])
            return notes[0]
        return item

    async def get(self, timeout: Optional[float] = None) -> Optional[Notification]:
        """Next notification; ``None`` on timeout (absolute deadline)."""
        if self._buffer:
            return self._buffer.pop(0)
        try:
            if timeout is None:
                item = await self._queue.get()
            else:
                item = await asyncio.wait_for(self._queue.get(), timeout)
        except asyncio.TimeoutError:
            return None
        return self._materialize(item)

    async def poll(self) -> List[Notification]:
        """Drain everything currently received, without blocking."""
        drained: List[Notification] = list(self._buffer)
        self._buffer.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return drained
            if isinstance(item, BaseException):
                self._queue.put_nowait(item)
                if drained:
                    return drained
                raise item
            if item.__class__ is NoteFrame:
                drained.extend(item.notifications())
            else:
                drained.append(item)

    async def ack(self, stamp: Optional[int] = None) -> None:
        """Acknowledge through ``stamp`` (default: everything seen)."""
        await self._client.ack(
            self.subscriber, self.resume_token if stamp is None else stamp
        )


class AsyncEAGrClient:
    """Asyncio client for one :class:`~repro.serve.gateway.GatewayServer`."""

    def __init__(self, host: str, port: int, *,
                 client_id: Optional[Hashable] = None) -> None:
        self._host = host
        self._port = port
        self.client_id = client_id
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._recv_task: Optional[asyncio.Task] = None
        self._send_lock = asyncio.Lock()
        self._rid = 0
        self._pending: Dict[int, asyncio.Future] = {}
        self._streams: Dict[Hashable, AsyncSubscriptionStream] = {}
        self._closed_exc: Optional[BaseException] = None
        self.server_info: Optional[dict] = None

    # -- lifecycle -----------------------------------------------------

    async def connect(self) -> dict:
        """Open the connection, HELLO, return the gateway's info dict."""
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._recv_task = asyncio.get_running_loop().create_task(self._recv())
        self.server_info = await self._request(
            lambda rid: encode_control(K_HELLO, (rid, self.client_id))
        )
        return self.server_info

    async def close(self) -> None:
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._recv_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except Exception:  # noqa: BLE001 - already dead
                pass
        self._fail_all(GatewayClosed("client closed"))

    def drop(self) -> None:
        """Abort the transport without goodbye — a simulated network cut.

        The gateway sees a reset and routes every stream through the
        server's ``disconnect`` path; a new client can then resume with
        each stream's :attr:`~AsyncSubscriptionStream.resume_token`."""
        if self._writer is not None:
            transport = self._writer.transport
            if transport is not None:
                transport.abort()

    # -- requests ------------------------------------------------------

    def _next_rid(self) -> int:
        self._rid += 1
        return self._rid

    async def _send(self, payload: bytes) -> None:
        if self._closed_exc is not None:
            raise GatewayClosed(str(self._closed_exc))
        data = LENGTH_PREFIX.pack(len(payload)) + payload
        async with self._send_lock:
            self._writer.write(data)
            await self._writer.drain()

    async def _request(self, build) -> Any:
        rid = self._next_rid()
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            await self._send(build(rid))
            return await future
        finally:
            self._pending.pop(rid, None)

    async def write_batch(self, writes: Sequence) -> int:
        """Apply one write batch through the gateway; returns the count."""
        items = writes if isinstance(writes, list) else list(writes)
        frame = WriteFrame.from_items(items) if items else None

        def build(rid: int) -> bytes:
            if frame is not None:
                return encode_write(rid, None, frame)
            return encode_pickle((OP_WRITE, rid, None, items))

        return await self._request(build)

    async def read_batch(self, nodes: Sequence) -> List[Any]:
        nodes = list(nodes)
        return await self._request(
            lambda rid: encode_control(K_READ, (rid, nodes))
        )

    async def subscribe(
        self,
        nodes: Optional[Sequence] = None,
        *,
        subscriber: Optional[Hashable] = None,
        resume_from: Optional[int] = None,
        auto_ack: bool = True,
    ) -> AsyncSubscriptionStream:
        """Open (or extend/resume) a notification stream.

        ``subscriber`` defaults to this client's ``client_id``.  With
        ``resume_from=N`` the stream replays every missed notification
        with stamp ``> N`` before splicing into live delivery; raises
        :class:`~repro.serve.journal.ResumeGapError` if the server no
        longer retains that window.
        """
        if subscriber is None:
            subscriber = self.client_id
        if subscriber is None:
            raise ValueError("no subscriber id: pass subscriber= or client_id=")
        stream = self._streams.get(subscriber)
        if stream is None:
            stream = AsyncSubscriptionStream(self, subscriber, auto_ack)
            self._streams[subscriber] = stream
        stream.auto_ack = auto_ack
        nodes = list(nodes) if nodes is not None else None
        reply = await self._request(
            lambda rid: encode_control(
                K_SUBSCRIBE, (rid, subscriber, nodes, resume_from)
            )
        )
        stream.snapshot.update(reply["snapshot"])
        stream.last_stamp = reply["last_stamp"]
        if resume_from is not None:
            stream.resume_token = max(stream.resume_token, resume_from)
        else:
            stream.resume_token = max(stream.resume_token, reply["last_stamp"])
        return stream

    async def ack(self, subscriber: Hashable, stamp: int) -> int:
        """Acknowledge notifications through ``stamp`` (releases gateway
        flow-control credit and truncates the server-side journal)."""
        return await self._request(
            lambda rid: encode_control(K_ACK, (rid, subscriber, stamp))
        )

    # -- the receive task ----------------------------------------------

    async def _recv(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(LENGTH_PREFIX.size)
                (length,) = LENGTH_PREFIX.unpack(header)
                payload = await self._reader.readexactly(length)
                kind = payload[0]
                if kind == K_OK:
                    rid, result = decode_control(payload)
                    future = self._pending.get(rid)
                    if future is not None and not future.done():
                        future.set_result(result)
                elif kind == K_ERROR:
                    rid, ekind, message, subscriber = decode_control(payload)
                    exc = _map_error(ekind, message)
                    if rid is not None:
                        future = self._pending.get(rid)
                        if future is not None and not future.done():
                            future.set_exception(exc)
                    elif subscriber is not None:
                        stream = self._streams.get(subscriber)
                        if stream is not None:
                            stream._push(exc)
                elif kind == K_NOTES:
                    subscriber, item = decode_control(payload)
                    stream = self._streams.get(subscriber)
                    if stream is not None:
                        stream._push(item)
                        if stream.auto_ack:
                            await self._send(
                                encode_control(
                                    K_ACK, (None, subscriber, item.stamp)
                                )
                            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - connection loss
            self._fail_all(
                exc
                if isinstance(exc, GatewayClosed)
                else GatewayClosed(f"connection lost: {exc!r}")
            )

    def _fail_all(self, exc: BaseException) -> None:
        if self._closed_exc is None:
            self._closed_exc = exc
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(exc)
        for stream in self._streams.values():
            stream._push(exc)


class SyncSubscriptionStream:
    """Blocking facade over :class:`AsyncSubscriptionStream`."""

    def __init__(self, client: "EAGrClient",
                 stream: AsyncSubscriptionStream) -> None:
        self._client = client
        self._stream = stream
        self.subscriber = stream.subscriber

    @property
    def snapshot(self) -> Dict[Any, Any]:
        return self._stream.snapshot

    @property
    def resume_token(self) -> int:
        return self._stream.resume_token

    def get(self, timeout: Optional[float] = None) -> Optional[Notification]:
        """Next notification, blocking up to ``timeout``; ``None`` on
        timeout.  Raises :class:`GatewayClosed` if the connection died."""
        return self._client._run(self._stream.get(timeout))

    def poll(self) -> List[Notification]:
        return self._client._run(self._stream.poll())

    def ack(self, stamp: Optional[int] = None) -> None:
        self._client._run(self._stream.ack(stamp))


class EAGrClient:
    """Synchronous gateway client: ``EAGrServer``'s surface over TCP.

    Runs an asyncio loop on a daemon thread and bridges every call with
    ``run_coroutine_threadsafe``.  Connects in the constructor::

        client = EAGrClient(host, port, client_id="dash-1")
        client.write_batch([(u, v, 1.0, ts)])
        stream = client.subscribe([ego])
        note = stream.get(timeout=5.0)
        client.close()

    Also usable as a context manager.  Thread-safe: calls from multiple
    threads serialize through the loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: Optional[Hashable] = None,
        connect_timeout: float = 30.0,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="eagr-client", daemon=True
        )
        self._thread.start()
        self._async = AsyncEAGrClient(host, port, client_id=client_id)
        self._closed = False
        try:
            self.server_info = self._run(
                self._async.connect(), timeout=connect_timeout
            )
        except BaseException:
            self.close()
            raise

    def _run(self, coro, timeout: Optional[float] = None) -> Any:
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    # -- surface -------------------------------------------------------

    def write_batch(self, writes: Sequence) -> int:
        return self._run(self._async.write_batch(writes))

    def read_batch(self, nodes: Sequence) -> List[Any]:
        return self._run(self._async.read_batch(nodes))

    def subscribe(
        self,
        nodes: Optional[Sequence] = None,
        *,
        subscriber: Optional[Hashable] = None,
        resume_from: Optional[int] = None,
        auto_ack: bool = True,
    ) -> SyncSubscriptionStream:
        stream = self._run(
            self._async.subscribe(
                nodes,
                subscriber=subscriber,
                resume_from=resume_from,
                auto_ack=auto_ack,
            )
        )
        return SyncSubscriptionStream(self, stream)

    def ack(self, subscriber: Hashable, stamp: int) -> int:
        return self._run(self._async.ack(subscriber, stamp))

    def drop(self) -> None:
        """Abort the TCP transport (test helper: simulated network cut)."""
        self._loop.call_soon_threadsafe(self._async.drop)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._run(self._async.close(), timeout=10.0)
        except Exception:  # noqa: BLE001 - connection already gone
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        # run_forever has returned; release the loop's resources.
        if not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "EAGrClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
