"""Warm read-replica: a second process tailing the primary's WAL.

StreamWorks-style standing queries want a read-scaling / high-availability
tier; the EAGr front-end's :class:`~repro.serve.wal.WriteAheadLog` is the
natural replication stream, because it already totally orders every
accepted write round and batch assignment.  :class:`ReplicaServer`
follows that log — poll-driven, read-only, never truncating — and keeps
its own in-process shard engines a bounded lag behind the primary:

* ``META`` / ``SNAP`` records build (or rebuild) the shard hosts — the
  same :class:`~repro.serve.shard.ShardSpec` + checkpoint restore path
  a crash recovery uses;
* ``W`` records stash accepted rounds; a ``B`` record assembles them
  into the exact batch the primary submitted and applies it
  **batch-exact** through :meth:`ShardHost.apply_write_batch`, so the
  replica's engines advance through precisely the primary's stamp
  trajectory (idempotently — re-application after a snapshot reset is
  skipped by ``applied_through``);
* a compaction racing the tailer is self-healing: when the cursor's
  segment disappears, the tailer re-anchors at the new snapshot base
  and the replica rebuilds from the ``SNAP`` record.

Reads are **pull with an explicit staleness bound**:
:meth:`ReplicaServer.read_batch` first waits (up to ``wait``) for the
replica to consume the log to within ``max_lag_bytes`` of its current
end, then answers under the apply lock together with the watermark the
answer corresponds to — a read is always consistent with the primary's
state *at that watermark*, never a torn mix.  :exc:`StaleReadError`
fires when the bound cannot be met in time.

Promotion: when the primary dies (however uncleanly), the kernel drops
its WAL ``flock``; :meth:`ReplicaServer.promote` drains the log to its
end, shuts the tailer down, and boots a full ``EAGrServer(wal_dir=...)``
over the same log — the standard cold-restart recovery, which loses no
acknowledged batch.  The replica's warm engines make the *observable*
gap small (reads keep being served until the moment of promotion); the
new primary then re-acquires the single-writer lock.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.query import EgoQuery
from repro.graph.dynamic_graph import DynamicGraph
from repro.serve.frames import merge_items
from repro.serve.shard import ShardHost, ShardSpec
from repro.serve.wal import WalState, WalTailer, list_segments

NodeId = Hashable


class ReplicaError(RuntimeError):
    """The replica cannot serve the request (not attached, closed, ...)."""


class StaleReadError(ReplicaError):
    """The replica could not catch up to the requested staleness bound
    before the wait deadline."""


class ReplicaServer:
    """Read-only warm standby fed by a primary's WAL directory.

    Parameters
    ----------
    graph / query:
        The same deployment arguments the primary was built with (the
        WAL persists the reader *partition*, not the graph itself).
    wal_dir:
        The primary's log directory.
    poll_interval:
        Tailer sleep between polls when the log is idle.
    engine_kwargs:
        Forwarded to each shard engine (must match the primary's for
        read equivalence — e.g. ``overlay_algorithm``, ``dataflow``).
    """

    def __init__(
        self,
        graph: DynamicGraph,
        query: EgoQuery,
        wal_dir: str,
        poll_interval: float = 0.02,
        value_store: str = "auto",
        attach_timeout: float = 30.0,
        **engine_kwargs: Any,
    ) -> None:
        self.graph = graph
        self.query = query
        self.wal_dir = wal_dir
        self.poll_interval = poll_interval
        self._value_store = value_store
        self._engine_kwargs = engine_kwargs
        self._tailer = WalTailer(wal_dir)
        self._apply_lock = threading.Lock()
        self._hosts: List[Optional[ShardHost]] = []
        self.num_shards = 0
        self.reader_shard: Dict[NodeId, int] = {}
        #: shard -> [(wal_seq, items)] accepted rounds awaiting a ``B``.
        self._rounds: Dict[int, List[Tuple[int, List[Tuple]]]] = {}
        self._covered: Dict[int, int] = {}
        #: shard -> batch number voided by an ``RB`` (awaiting re-issue).
        self._rolled_back: Dict[int, int] = {}
        self._last_seq = 0
        self.partition_epoch = 0
        self.reshards_applied = 0
        self.batches_applied = 0
        self.resets = 0
        self._closed = False
        self._stop = threading.Event()
        from repro.obs import MetricsRegistry

        #: Replica-side registry: lag + apply progress, refreshed on
        #: :meth:`metrics` (pull-model — the tail loop stays untimed).
        self._registry = MetricsRegistry(enabled=True)
        self._m_lag = self._registry.gauge("replica_lag_bytes")
        self._m_applied = self._registry.gauge("replica_batches_applied")
        self._m_resets = self._registry.gauge("replica_snapshot_resets")
        # Attach synchronously: fold whatever the log already holds, so a
        # constructed replica is immediately serviceable (further records
        # stream in on the tailer thread).
        deadline = time.monotonic() + attach_timeout
        while True:
            with self._apply_lock:
                self._consume(self._tailer.poll())
            if self._hosts:
                break
            if time.monotonic() >= deadline:
                raise ReplicaError(
                    f"no WAL META record appeared in {wal_dir!r} within "
                    f"{attach_timeout}s"
                )
            time.sleep(self.poll_interval)
        self._thread = threading.Thread(
            target=self._tail_loop, name="eagr-replica-tailer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # record consumption
    # ------------------------------------------------------------------

    def _build_hosts(self, state: WalState) -> None:
        """(Re)build every shard host from a fold of the log prefix."""
        self.num_shards = state.num_shards
        self.reader_shard = dict(state.reader_shard)
        shard_readers: List[set] = [set() for _ in range(self.num_shards)]
        for node, shard_id in self.reader_shard.items():
            shard_readers[shard_id].add(node)
        hosts: List[Optional[ShardHost]] = []
        for shard_id in range(self.num_shards):
            spec = ShardSpec(
                self.graph,
                self.query,
                shard_id=shard_id,
                num_shards=self.num_shards,
                readers=frozenset(shard_readers[shard_id]),
                value_store=self._value_store,
                engine_kwargs=self._engine_kwargs,
                checkpoint=state.checkpoints.get(shard_id),
            )
            host = spec.build()
            for batch_no, items in state.redo.get(shard_id, ()):
                host.apply_write_batch(batch_no, items)
            hosts.append(host)
        self._hosts = hosts
        self._rounds = {
            shard_id: list(rounds) for shard_id, rounds in state.rounds.items()
        }
        self._covered = dict(state.covered)
        self._rolled_back = {}
        self._last_seq = state.wal_seq
        self.partition_epoch = state.meta.get("partition_epoch", 0)

    def _consume(self, records: Sequence[Tuple]) -> None:
        """Apply a run of tailed records (caller holds the apply lock)."""
        for record in records:
            kind = record[0]
            if kind == "W":
                _k, seq, per_shard, _clock = record
                self._last_seq = seq
                for shard_id, items in per_shard.items():
                    self._rounds.setdefault(shard_id, []).append((seq, items))
            elif kind == "B":
                _k, shard_id, batch_no, covered = record
                parts: List[Any] = []
                keep: List[Tuple[int, Any]] = []
                for seq, round_items in self._rounds.get(shard_id, ()):
                    if seq <= covered:
                        parts.append(round_items)
                    else:
                        keep.append((seq, round_items))
                self._rounds[shard_id] = keep
                # Binary rounds stay columnar end-to-end: frame concat
                # here, frame scatter in ``apply_write_batch``.
                items = merge_items(parts)
                self._covered[shard_id] = covered
                host = self._hosts[shard_id]
                if self._rolled_back.pop(shard_id, None) == batch_no:
                    # Re-issue of a rolled-back batch: this replica
                    # already applied the original under the same
                    # number (it applies eagerly; the primary's
                    # rollback happened before any worker saw it), so
                    # only the *newer* rounds are new here.  They apply
                    # unnumbered — value-equivalent, ``applied_through``
                    # already at ``batch_no`` — since a numbered apply
                    # would be skipped as a duplicate.
                    host.apply_write_batch(None, items)
                else:
                    # Batch-exact application: the replica's engines
                    # advance through exactly the primary's batch
                    # trajectory; ``applied_through`` makes a
                    # re-application after a SNAP reset a no-op.
                    host.apply_write_batch(batch_no, items)
                self.batches_applied += 1
            elif kind == "RB":
                _k, shard_id, batch_no = record
                # A refused non-blocking submit on the primary: the
                # assignment is void there, but the replica already
                # applied it.  Mark the number; the matching re-issue
                # (same ``batch_no``, wider coverage) takes the delta
                # path above instead of being skipped.
                self._rolled_back[shard_id] = batch_no
            elif kind == "C":
                pass  # the replica applied those batches as they streamed
            elif kind == "P":
                # A live reshard on the primary: rebuild the affected
                # shards from their synthetic post-splice checkpoints and
                # replace their pending rounds with the re-routed residue
                # — the same splice the primary performed, minus the
                # subscriber machinery the replica never materializes.
                _k, epoch, moves, checkpoints, pending = record
                for node, dst in moves.items():
                    self.reader_shard[node] = dst
                shard_readers: Dict[int, set] = {
                    shard_id: set() for shard_id in checkpoints
                }
                for node, shard_id in self.reader_shard.items():
                    if shard_id in shard_readers:
                        shard_readers[shard_id].add(node)
                for shard_id, ck in checkpoints.items():
                    spec = ShardSpec(
                        self.graph,
                        self.query,
                        shard_id=shard_id,
                        num_shards=self.num_shards,
                        readers=frozenset(shard_readers[shard_id]),
                        value_store=self._value_store,
                        engine_kwargs=self._engine_kwargs,
                        checkpoint=ck,
                    )
                    self._hosts[shard_id] = spec.build()
                    items = pending.get(shard_id) or []
                    self._rounds[shard_id] = (
                        [(self._last_seq, items)] if items else []
                    )
                    self._rolled_back.pop(shard_id, None)
                self.partition_epoch = epoch
                self.reshards_applied += 1
            elif kind in ("S", "U"):
                pass  # subscriptions are the primary's concern
            elif kind == "META":
                state = WalState()
                state.fold(record)
                self._build_hosts(state)
            elif kind == "SNAP":
                self.resets += 1
                self._build_hosts(record[1])

    def _tail_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                records = self._tailer.poll()
            except OSError:
                continue  # transient listing race; retry next tick
            if records:
                with self._apply_lock:
                    if self._closed:
                        return
                    self._consume(records)

    # ------------------------------------------------------------------
    # reads with a staleness bound
    # ------------------------------------------------------------------

    def lag_bytes(self) -> int:
        """Bytes of WAL the replica has not consumed yet (0 = caught up).

        Measured against the segment files on disk, so it reflects
        everything the primary has *flushed*, including rounds it has
        not fsynced yet.
        """
        segments = list_segments(self.wal_dir)
        total = 0
        cursor_index = self._tailer._segment_index
        for index, path in segments:
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if cursor_index is None or index > cursor_index:
                total += size
            elif index == cursor_index:
                total += max(0, size - self._tailer._offset)
        return total

    def watermark(self) -> Dict[int, int]:
        """Per-shard highest applied batch number (the replica's position)."""
        with self._apply_lock:
            return {
                shard_id: host.applied_through
                for shard_id, host in enumerate(self._hosts)
                if host is not None
            }

    def read(self, node: NodeId, **kwargs: Any) -> Any:
        return self.read_batch([node], **kwargs)[0]

    def read_batch(
        self,
        nodes: Sequence[NodeId],
        max_lag_bytes: int = 0,
        wait: float = 10.0,
    ) -> List[Any]:
        """Evaluate the query at each node against the replica's state.

        First waits (up to ``wait`` seconds) until the unconsumed WAL
        suffix is at most ``max_lag_bytes``; raises
        :class:`StaleReadError` otherwise.  The answer is computed under
        the apply lock, so it is exactly the primary's state at
        :meth:`watermark` — reads never observe a half-applied batch.
        """
        self._check_open()
        deadline = time.monotonic() + wait
        while self.lag_bytes() > max_lag_bytes:
            if time.monotonic() >= deadline:
                raise StaleReadError(
                    f"replica lag {self.lag_bytes()}B exceeds the "
                    f"{max_lag_bytes}B bound after {wait}s"
                )
            time.sleep(self.poll_interval)
        nodes = list(nodes)
        aggregate = self.query.aggregate
        identity = aggregate.finalize(aggregate.identity())
        results: List[Any] = [identity] * len(nodes)
        per_shard: Dict[int, List[int]] = {}
        for position, node in enumerate(nodes):
            shard_id = self.reader_shard.get(node)
            if shard_id is not None:
                per_shard.setdefault(shard_id, []).append(position)
        with self._apply_lock:
            for shard_id, positions in per_shard.items():
                host = self._hosts[shard_id]
                values = host.engine.read_batch(
                    [nodes[p] for p in positions]
                )
                for position, value in zip(positions, values):
                    results[position] = value
        return results

    # ------------------------------------------------------------------
    # promotion and lifecycle
    # ------------------------------------------------------------------

    def promote(self, **server_kwargs: Any):
        """Take over as primary after the old primary's death.

        Drains the WAL to its current end (no acknowledged batch left
        behind), stops tailing, closes this replica, and boots a full
        :class:`~repro.serve.server.EAGrServer` over the same log — the
        standard cold-restart recovery path, including the subscriber
        journals and watch registry the read-only replica never
        materialized.  Raises
        :class:`~repro.serve.wal.WalLockedError` if the old primary is
        in fact still alive (its flock is still held) — split-brain is
        refused, not raced.
        """
        self._check_open()
        with self._apply_lock:
            self._consume(self._tailer.poll())
        self.close()
        from repro.serve.server import EAGrServer

        server_kwargs.setdefault("num_shards", self.num_shards)
        server_kwargs.setdefault("value_store", self._value_store)
        return EAGrServer(
            self.graph,
            self.query,
            wal_dir=self.wal_dir,
            **{**self._engine_kwargs, **server_kwargs},
        )

    def _check_open(self) -> None:
        if self._closed:
            raise ReplicaError("ReplicaServer is closed")

    def stats(self) -> Dict[str, Any]:
        return {
            "num_shards": self.num_shards,
            "batches_applied": self.batches_applied,
            "lag_bytes": self.lag_bytes(),
            "watermark": self.watermark(),
            "snapshot_resets": self.resets,
            "partition_epoch": self.partition_epoch,
            "reshards_applied": self.reshards_applied,
        }

    def metrics(self, include_buckets: bool = False) -> Dict[str, Any]:
        """Registry-shaped snapshot (same contract as the server's):
        ``{"enabled": True, "replica": {metric: value}}``, with the lag
        gauge refreshed at call time."""
        self._m_lag.set(self.lag_bytes())
        self._m_applied.set(self.batches_applied)
        self._m_resets.set(self.resets)
        return {
            "enabled": True,
            "replica": self._registry.snapshot(include_buckets),
        }

    def close(self) -> None:
        """Stop tailing and drop the shard engines (idempotent)."""
        if self._closed:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        with self._apply_lock:
            self._closed = True
            self._hosts = []

    def __enter__(self) -> "ReplicaServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
